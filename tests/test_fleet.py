"""repro.fleet: distributed campaigns, leases, and loss tolerance.

The acceptance bar for the distributed observatory: the merged
campaign artifact is a pure function of the spec — byte-identical
whether produced by one process, by in-process agent threads, or by
subprocess agents where one is killed mid-round — and the coordinator
reassigns leases from crashed, stalled, or silent agents without ever
double-counting a unit.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys
import time

import pytest

from repro import faults
from repro.topology import WorldParams, build_world
from repro.fleet import (
    AgentCrashed,
    CampaignSpec,
    CoordinatorServer,
    FleetCoordinator,
    LocalClient,
    bundle_for,
    merge_results,
    merged_digest,
    plan_shards,
    run_campaign_serial,
    run_unit,
    shards_for,
    spawn_local_agents,
)

SEED = 2025
#: Small but non-trivial: 2 rounds x 4 shards = 8 units, every African
#: region represented, DNS sites present.
SPEC = CampaignSpec(seed=SEED, scale=0.1, rounds=2, shards=4,
                    probes_per_shard=4, targets_per_probe=4)


@pytest.fixture(autouse=True)
def clean_faults():
    faults.configure(None)
    yield
    faults.configure(None)


@pytest.fixture(scope="module")
def topo():
    return build_world(params=WorldParams(seed=SEED, scale=0.1))


@pytest.fixture(scope="module")
def oracle():
    """Single-process merged doc + digest for SPEC."""
    doc = run_campaign_serial(SPEC)
    return doc, merged_digest(doc)


# ----------------------------------------------------------------------
# Shard planning
# ----------------------------------------------------------------------
class TestShardPlanning:
    def test_covers_every_african_as_exactly_once(self, topo):
        african = {a.asn for a in topo.african_ases()}
        for n in (2, 4, 5, 8):
            plan = plan_shards(topo, n)
            assert len(plan) == n
            seen = [asn for shard in plan for asn in shard.asns]
            assert len(seen) == len(set(seen)) == len(african), n
            assert set(seen) == african, n

    def test_deterministic(self, topo):
        a = [s.to_dict() for s in plan_shards(topo, 4)]
        b = [s.to_dict() for s in plan_shards(topo, 4)]
        assert a == b

    def test_region_apportionment_when_enough_shards(self, topo):
        regions = {a.region.name for a in topo.african_ases()}
        plan = plan_shards(topo, max(8, len(regions)))
        # With >= one shard per region, every shard is single-region
        # and every region holds at least one shard.
        assert {s.region for s in plan} == regions
        for shard in plan:
            shard_regions = {a.region.name for a in topo.african_ases()
                             if a.asn in set(shard.asns)}
            assert shard_regions == {shard.region}

    def test_fallback_chunks_label_straddlers_mixed(self, topo):
        plan = plan_shards(topo, 2)
        regions = {a.region.name for a in topo.african_ases()}
        assert all(s.region in regions | {"mixed"} for s in plan)

    def test_shards_nonempty_and_duplicate_free(self, topo):
        for shard in plan_shards(topo, 4):
            assert shard.asns
            assert len(shard.asns) == len(set(shard.asns))


# ----------------------------------------------------------------------
# Spec + merge
# ----------------------------------------------------------------------
class TestSpecAndMerge:
    def test_spec_round_trip_and_digest(self):
        again = CampaignSpec.from_dict(SPEC.to_dict())
        assert again == SPEC
        assert again.digest == SPEC.digest
        assert CampaignSpec(seed=SEED, scale=0.1, rounds=3, shards=4,
                            probes_per_shard=4,
                            targets_per_probe=4).digest != SPEC.digest

    def test_units_enumerate_round_major(self):
        assert SPEC.units() == [(r, s) for r in range(2)
                                for s in range(4)]

    def test_unit_is_deterministic_and_round_dependent(self):
        bundle = bundle_for(SEED, 0.1)
        plan = shards_for(bundle, SPEC)
        one = run_unit(bundle, SPEC, 0, plan[0])
        two = run_unit(bundle, SPEC, 0, plan[0])
        assert one == two
        other_round = run_unit(bundle, SPEC, 1, plan[0])
        assert other_round["digest"] != one["digest"]

    def test_merge_requires_every_unit(self, oracle):
        doc, _ = oracle
        with pytest.raises(ValueError, match="missing units"):
            merge_results(SPEC, doc["units"][:-1])

    def test_merge_is_order_independent(self, oracle):
        doc, digest = oracle
        shuffled = list(reversed(doc["units"]))
        assert merged_digest(merge_results(SPEC, shuffled)) == digest

    def test_merged_doc_carries_no_agent_identity(self, oracle):
        doc, _ = oracle
        assert set(doc) == {"format", "spec", "units", "totals"}
        for unit in doc["units"]:
            assert "agent_id" not in unit and "lease_id" not in unit


# ----------------------------------------------------------------------
# Coordinator protocol (fake clock — no sleeps)
# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now


def _fake_result(round_idx: int, shard: int,
                 digest: str = "d0") -> dict:
    return {"round": round_idx, "shard": shard, "region": "x",
            "asns": 1, "probes": [], "digest": digest,
            "measurements": 1, "reached": 1, "rtt_count": 1,
            "dns_runs": 0, "dns_ok": 0, "wire_bytes": 10,
            "rtt_sum_ms": 5.0}


class TestCoordinatorProtocol:
    def setup_method(self):
        self.clock = FakeClock()
        self.coord = FleetCoordinator(heartbeat_timeout_s=10.0,
                                      lease_timeout_s=30.0,
                                      clock=self.clock)
        self.cid = self.coord.submit_campaign(SPEC)

    def _drain_round(self, agent_id: str, expect_round: int) -> None:
        for _ in range(SPEC.shards):
            unit = self.coord.lease(agent_id)["unit"]
            assert unit["round"] == expect_round
            self.coord.submit(agent_id, self.cid, unit["lease_id"],
                              unit["round"], unit["shard"],
                              _fake_result(unit["round"], unit["shard"]))

    def test_campaign_submit_is_idempotent(self):
        assert self.coord.submit_campaign(SPEC) == self.cid
        assert len(self.coord.status()["campaigns"]) == 1

    def test_rounds_are_barriers(self):
        # "a" holds one round-0 unit; "b" drains the other three.
        held = self.coord.lease("a")["unit"]
        assert held["round"] == 0
        for _ in range(SPEC.shards - 1):
            unit = self.coord.lease("b")["unit"]
            assert unit["round"] == 0
            self.coord.submit("b", self.cid, unit["lease_id"],
                              unit["round"], unit["shard"],
                              _fake_result(unit["round"], unit["shard"]))
        # Round 1 is withheld while "a"'s round-0 unit is outstanding.
        assert self.coord.lease("b")["unit"] is None
        self.coord.submit("a", self.cid, held["lease_id"],
                          held["round"], held["shard"],
                          _fake_result(held["round"], held["shard"]))
        opened = self.coord.lease("b")["unit"]
        assert opened is not None and opened["round"] == 1

    def test_round_advances_when_round_zero_done(self):
        self._drain_round("a", expect_round=0)
        unit = self.coord.lease("a")["unit"]
        assert unit is not None and unit["round"] == 1
        self._drain_round_from(unit, "a")
        c = self.coord.campaign(self.cid)
        assert c.done and c.merged is not None

    def _drain_round_from(self, first_unit, agent_id):
        unit = first_unit
        while unit is not None:
            self.coord.submit(agent_id, self.cid, unit["lease_id"],
                              unit["round"], unit["shard"],
                              _fake_result(unit["round"], unit["shard"]))
            unit = self.coord.lease(agent_id)["unit"]

    def test_repoll_regrants_same_lease(self):
        first = self.coord.lease("a")["unit"]
        again = self.coord.lease("a")["unit"]
        assert again["lease_id"] == first["lease_id"]
        assert (again["round"], again["shard"]) \
            == (first["round"], first["shard"])
        assert again["attempt"] == first["attempt"] == 1

    def test_expired_lease_is_reassigned_with_attempt_bump(self):
        first = self.coord.lease("a")["unit"]
        self.clock.now += 31.0  # past lease timeout, within heartbeat?
        # (heartbeat timeout is smaller, but "a" is also swept LOST —
        # either path must release the unit for "b")
        second = self.coord.lease("b")["unit"]
        assert (second["round"], second["shard"]) \
            == (first["round"], first["shard"])
        assert second["lease_id"] != first["lease_id"]
        assert second["attempt"] == 2

    def test_silent_agent_is_lost_and_leases_release(self):
        self.coord.lease("a")
        self.clock.now += 11.0  # heartbeat timeout 10s < lease 30s
        self.coord.heartbeat("b")
        states = {a["agent_id"]: a["state"]
                  for a in self.coord.status()["agents"]}
        assert states == {"a": "lost", "b": "alive"}
        unit = self.coord.lease("b")["unit"]
        assert unit is not None and unit["attempt"] == 2
        # A lost agent that comes back is alive again.
        self.coord.heartbeat("a")
        states = {a["agent_id"]: a["state"]
                  for a in self.coord.status()["agents"]}
        assert states["a"] == "alive"

    def test_submit_is_idempotent_and_flags_mismatch(self):
        unit = self.coord.lease("a")["unit"]
        args = ("a", self.cid, unit["lease_id"], unit["round"],
                unit["shard"])
        first = self.coord.submit(*args, _fake_result(
            unit["round"], unit["shard"]))
        assert first == {"ok": True, "accepted": True,
                         "duplicate": False, "mismatch": False}
        dup = self.coord.submit(*args, _fake_result(
            unit["round"], unit["shard"]))
        assert dup["duplicate"] and not dup["mismatch"]
        bad = self.coord.submit(*args, _fake_result(
            unit["round"], unit["shard"], digest="OTHER"))
        assert bad["duplicate"] and bad["mismatch"]

    def test_late_submit_after_reassignment_is_accepted(self):
        old = self.coord.lease("a")["unit"]
        self.clock.now += 31.0
        new = self.coord.lease("b")["unit"]
        assert (new["round"], new["shard"]) == (old["round"],
                                                old["shard"])
        # "a" finally answers with its stale lease: the bytes are
        # deterministic, so the result is accepted, and "b"'s later
        # submit becomes the duplicate.
        late = self.coord.submit("a", self.cid, old["lease_id"],
                                 old["round"], old["shard"],
                                 _fake_result(old["round"],
                                              old["shard"]))
        assert late["accepted"] and not late["duplicate"]
        dup = self.coord.submit("b", self.cid, new["lease_id"],
                                new["round"], new["shard"],
                                _fake_result(new["round"],
                                             new["shard"]))
        assert dup["duplicate"] and not dup["mismatch"]

    def test_unknown_campaign_and_unit_rejected(self):
        assert not self.coord.submit("a", "c999-nope", "l1", 0, 0,
                                     _fake_result(0, 0))["ok"]
        assert not self.coord.submit("a", self.cid, "l1", 99, 99,
                                     _fake_result(99, 99))["ok"]

    def test_drain_tells_agents_to_shut_down(self):
        self.coord.drain()
        assert self.coord.lease("a")["shutdown"] is True
        assert self.coord.lease("a")["unit"] is None
        assert self.coord.register("z")["shutdown"] is True


# ----------------------------------------------------------------------
# End-to-end byte identity: serial vs threads vs processes-with-a-kill
# ----------------------------------------------------------------------
class TestByteIdentity:
    def test_four_inprocess_agents_match_serial(self, oracle):
        _, want = oracle
        coord = FleetCoordinator(heartbeat_timeout_s=5.0,
                                 lease_timeout_s=5.0)
        cid = coord.submit_campaign(SPEC)
        pairs = spawn_local_agents(coord, 4)
        merged = coord.wait(cid, timeout=120.0)
        coord.drain()
        for thread, _ in pairs:
            thread.join(timeout=30.0)
        assert merged is not None
        assert merged_digest(merged) == want
        done = sum(a["units_done"]
                   for a in coord.status()["agents"])
        assert done == len(SPEC.units())

    def test_inprocess_crash_is_survived(self, oracle):
        _, want = oracle
        faults.configure("fleet.agent_crash=1x1")
        coord = FleetCoordinator(heartbeat_timeout_s=1.0,
                                 lease_timeout_s=2.0)
        cid = coord.submit_campaign(SPEC)
        pairs = spawn_local_agents(coord, 3)
        merged = coord.wait(cid, timeout=120.0)
        coord.drain()
        for thread, _ in pairs:
            thread.join(timeout=30.0)
        assert merged is not None
        assert merged_digest(merged) == want
        crashed = [a for _, a in pairs if a.stats.errors]
        assert len(crashed) == 1
        states = {a["agent_id"]: a["state"]
                  for a in coord.status()["agents"]}
        assert states[crashed[0].stats.agent_id] == "lost"

    def test_four_subprocess_agents_one_killed_match_serial(
            self, oracle, tmp_path):
        _, want = oracle
        coord = FleetCoordinator(heartbeat_timeout_s=2.0,
                                 lease_timeout_s=3.0)
        server = CoordinatorServer(coord).start()
        host, port = server.address
        cid = coord.submit_campaign(SPEC)
        env = dict(os.environ)
        env["PYTHONPATH"] = str(pathlib.Path(__file__).resolve()
                                .parents[1] / "src")
        env.pop("REPRO_FAULTS", None)
        procs = []
        try:
            for i in range(4):
                agent_env = dict(env)
                if i == 0:
                    agent_env["REPRO_FAULTS"] = "fleet.agent_crash=1x1"
                procs.append(subprocess.Popen(
                    [sys.executable, "-m", "repro", "agent",
                     "--connect", f"{host}:{port}",
                     "--agent-id", f"t-{i}",
                     "--poll", "0.05", "--exit-when-idle", "200"],
                    env=agent_env, stdout=subprocess.DEVNULL))
            merged = coord.wait(cid, timeout=180.0)
            assert merged is not None, "campaign stalled after kill"
            assert merged_digest(merged) == want
            coord.drain()
            codes = [p.wait(timeout=30) for p in procs]
            assert codes[0] == faults.CRASH_EXIT_CODE
            assert codes[1:] == [0, 0, 0]
            states = {a["agent_id"]: a["state"]
                      for a in coord.status()["agents"]}
            assert states["t-0"] == "lost"
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()
                    proc.wait()
            server.stop()


# ----------------------------------------------------------------------
# Message loss: dropped RPCs are repaired by retry + idempotency
# ----------------------------------------------------------------------
class TestMessageLoss:
    def test_dropped_messages_do_not_change_the_artifact(self, oracle):
        _, want = oracle
        # Drop the first 6 fleet RPC legs (requests and responses
        # alternate fault-site occurrences); retries must repair all.
        faults.configure("fleet.msg_drop=1x6")
        coord = FleetCoordinator(heartbeat_timeout_s=30.0,
                                 lease_timeout_s=30.0)
        cid = coord.submit_campaign(SPEC)
        pairs = spawn_local_agents(coord, 2)
        merged = coord.wait(cid, timeout=120.0)
        coord.drain()
        for thread, _ in pairs:
            thread.join(timeout=30.0)
        assert merged is not None
        assert merged_digest(merged) == want

    def test_local_client_retries_through_drops(self):
        faults.configure("fleet.msg_drop=1x2")
        coord = FleetCoordinator()
        client = LocalClient(coord, retries=5)
        reply = client.call({"op": "register", "agent_id": "r"},
                            ident="r")
        assert reply["ok"]
        # The drops were consumed by retries, not lost silently.
        assert faults.should_fire("fleet.msg_drop", "anything") is False


# ----------------------------------------------------------------------
# Artifact store + event trail integration
# ----------------------------------------------------------------------
class TestIntegration:
    def test_finished_campaign_lands_in_store_and_eventlog(
            self, oracle, tmp_path):
        from repro.eventlog import EventLog, EventType
        from repro.store import ArtifactStore, canonical_bytes

        doc, want = oracle
        log = EventLog(tmp_path / "ev", fsync=False)
        store = ArtifactStore(root=tmp_path / "store")
        coord = FleetCoordinator(eventlog=log, store=store)
        cid = coord.submit_campaign(SPEC)
        pairs = spawn_local_agents(coord, 2)
        merged = coord.wait(cid, timeout=120.0)
        coord.drain()
        for thread, _ in pairs:
            thread.join(timeout=30.0)
        assert merged is not None
        c = coord.campaign(cid)
        assert c.digest == want
        assert c.artifact_digest is not None
        payload = store.get_by_digest(c.artifact_digest)
        assert payload == canonical_bytes(c.merged)
        types = {e.etype for e in log.read()}
        assert {EventType.CAMPAIGN_BEGIN, EventType.AGENT_JOIN,
                EventType.LEASE_GRANTED, EventType.SHARD_DONE,
                EventType.CAMPAIGN_DONE} <= types
