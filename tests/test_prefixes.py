"""IPv4 prefix machinery: parsing, containment, allocation, lookup."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.topology.prefixes import (
    Prefix,
    PrefixAllocator,
    PrefixRegistry,
    format_ip,
)

aligned_prefixes = st.integers(0, 24).flatmap(
    lambda plen: st.integers(0, (1 << plen) - 1).map(
        lambda idx: Prefix(idx << (32 - plen), plen)))


class TestPrefix:
    def test_parse_and_str_roundtrip(self):
        p = Prefix.parse("41.12.0.0/16")
        assert str(p) == "41.12.0.0/16"
        assert p.size == 65536

    def test_parse_rejects_bad_input(self):
        for bad in ("41.0.0.0", "300.0.0.0/8", "41.0.0/8", "x/8"):
            with pytest.raises(ValueError):
                Prefix.parse(bad)

    def test_misaligned_network_rejected(self):
        with pytest.raises(ValueError):
            Prefix(1, 24)

    def test_contains_ip(self):
        p = Prefix.parse("10.0.0.0/24")
        assert p.contains_ip(p.network)
        assert p.contains_ip(p.last)
        assert not p.contains_ip(p.last + 1)
        assert not p.contains_ip(p.network - 1)

    def test_contains_prefix(self):
        outer = Prefix.parse("10.0.0.0/8")
        inner = Prefix.parse("10.5.0.0/16")
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_subnets(self):
        p = Prefix.parse("10.0.0.0/22")
        subs = list(p.subnets(24))
        assert len(subs) == 4
        assert all(p.contains(s) for s in subs)
        with pytest.raises(ValueError):
            list(p.subnets(20))

    def test_slash24_count(self):
        assert Prefix.parse("10.0.0.0/20").slash24_count() == 16
        assert Prefix.parse("10.0.0.0/26").slash24_count() == 1

    @given(aligned_prefixes)
    def test_random_ip_inside(self, prefix):
        rng = random.Random(1)
        for _ in range(5):
            assert prefix.contains_ip(prefix.random_ip(rng))

    @given(aligned_prefixes, aligned_prefixes)
    def test_overlap_symmetric_and_consistent(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)
        if a.contains(b) or b.contains(a):
            assert a.overlaps(b)

    def test_format_ip(self):
        assert format_ip(0) == "0.0.0.0"
        assert format_ip(0xFFFFFFFF) == "255.255.255.255"
        with pytest.raises(ValueError):
            format_ip(-1)


class TestAllocator:
    def test_sequential_non_overlapping(self):
        alloc = PrefixAllocator([Prefix.parse("10.0.0.0/8")])
        chunks = [alloc.allocate(20) for _ in range(50)]
        for i, a in enumerate(chunks):
            for b in chunks[i + 1:]:
                assert not a.overlaps(b)

    def test_spans_multiple_pools(self):
        alloc = PrefixAllocator([Prefix.parse("10.0.0.0/24"),
                                 Prefix.parse("11.0.0.0/24")])
        a = alloc.allocate(25)
        b = alloc.allocate(25)
        c = alloc.allocate(25)
        assert a.network >> 24 == 10 and b.network >> 24 == 10
        assert c.network >> 24 == 11

    def test_exhaustion_raises(self):
        alloc = PrefixAllocator([Prefix.parse("10.0.0.0/24")])
        alloc.allocate(24)
        with pytest.raises(RuntimeError):
            alloc.allocate(24)

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            PrefixAllocator([])

    @given(st.lists(st.integers(16, 24), min_size=1, max_size=30))
    def test_mixed_sizes_never_overlap(self, plens):
        alloc = PrefixAllocator([Prefix.parse("10.0.0.0/8")])
        chunks = [alloc.allocate(p) for p in plens]
        for i, a in enumerate(chunks):
            for b in chunks[i + 1:]:
                assert not a.overlaps(b)


class TestRegistry:
    def _registry(self):
        reg = PrefixRegistry()
        reg.add(Prefix.parse("10.0.0.0/16"), "alpha")
        reg.add(Prefix.parse("10.1.0.0/16"), "beta")
        reg.add(Prefix.parse("192.168.0.0/24"), "gamma")
        return reg

    def test_lookup_owner(self):
        reg = self._registry()
        assert reg.lookup(Prefix.parse("10.0.5.0/24").network) == "alpha"
        assert reg.lookup(Prefix.parse("10.1.0.0/16").last) == "beta"
        assert reg.lookup(Prefix.parse("192.168.0.0/24").network + 7) \
            == "gamma"

    def test_lookup_miss(self):
        reg = self._registry()
        assert reg.lookup(Prefix.parse("11.0.0.0/8").network) is None

    def test_overlap_detected(self):
        reg = PrefixRegistry()
        reg.add(Prefix.parse("10.0.0.0/16"), "a")
        reg.add(Prefix.parse("10.0.128.0/17"), "b")
        with pytest.raises(ValueError):
            reg.lookup(0)

    def test_lookup_prefix(self):
        reg = self._registry()
        p = reg.lookup_prefix(Prefix.parse("10.1.2.0/24").network)
        assert p == Prefix.parse("10.1.0.0/16")

    @given(st.integers(0, 0xFFFFFFFF))
    def test_lookup_never_crashes(self, ip):
        reg = self._registry()
        owner = reg.lookup(ip)
        if owner is not None:
            prefix = reg.lookup_prefix(ip)
            assert prefix is not None and prefix.contains_ip(ip)
