"""The repro.exec layer: deterministic fan-out and shared contexts."""

from __future__ import annotations

import pytest

from repro import build_world
from repro.exec import (
    CONTEXT,
    MIN_CHUNKSIZE,
    RoutingContext,
    WorkerPool,
    chunk_plan,
    current_payload,
    fork_available,
    get_default_workers,
    map_tasks,
    pair_for,
    resolve_workers,
    routing_for,
    set_default_workers,
    suggested_workers,
)
from repro.routing import BGPRouting, PhysicalNetwork

needs_fork = pytest.mark.skipif(not fork_available(),
                                reason="platform has no fork")


def _square(x: int) -> int:
    return x * x


def _with_payload(x: int) -> int:
    return x + current_payload()


def _nested(x: int) -> list[int]:
    # A worker fanning out again must silently degrade to serial.
    return map_tasks(_square, [x, x + 1], workers=4)


# ----------------------------------------------------------------------
class TestMapTasks:
    def test_serial_preserves_order(self):
        assert map_tasks(_square, [3, 1, 2]) == [9, 1, 4]

    def test_empty_batch(self):
        assert map_tasks(_square, []) == []

    @needs_fork
    def test_parallel_matches_serial(self):
        items = list(range(40))
        assert map_tasks(_square, items, workers=3) == \
            map_tasks(_square, items, workers=1)

    def test_payload_reaches_serial_tasks(self):
        assert map_tasks(_with_payload, [1, 2], payload=10) == [11, 12]
        assert current_payload() is None  # restored after the batch

    @needs_fork
    def test_payload_reaches_parallel_tasks(self):
        assert map_tasks(_with_payload, [1, 2], workers=2,
                         payload=10) == [11, 12]

    @needs_fork
    def test_nested_fanout_runs_serially(self):
        assert map_tasks(_nested, [2, 5], workers=2) == \
            [[4, 9], [25, 36]]

    def test_default_workers_round_trip(self):
        before = get_default_workers()
        try:
            set_default_workers(3)
            assert get_default_workers() == 3
            if fork_available():
                assert resolve_workers(None) == 3
            set_default_workers(0)  # clamped to 1
            assert get_default_workers() == 1
        finally:
            set_default_workers(before)

    def test_worker_pool_maps(self):
        pool = WorkerPool(workers=1)
        assert not pool.parallel
        assert pool.map(_square, [2, 4]) == [4, 16]

    def test_suggested_workers_positive(self):
        assert suggested_workers() >= 1


# ----------------------------------------------------------------------
class TestChunkPlan:
    """Pin the dispatch chunking so small batches never degrade to
    one-item chunks (the old ``len(items) // (workers * 4)`` heuristic
    floored to 1 and paid one pipe round-trip per task)."""

    @staticmethod
    def _chunks(n: int, workers: int) -> int:
        size = chunk_plan(n, workers)
        return -(-n // size)  # ceil

    def test_minimum_chunk_size_enforced(self):
        # 8 items / 2 workers used to yield size 1 (8 chunks); the
        # minimum now batches them 4 at a time.
        assert chunk_plan(8, 2) == MIN_CHUNKSIZE
        assert self._chunks(8, 2) == 2

    def test_small_batch_is_one_chunk(self):
        # Fewer items than the minimum: one chunk, never size > n.
        assert chunk_plan(3, 4) == 3
        assert self._chunks(3, 4) == 1

    def test_large_batch_targets_four_chunks_per_worker(self):
        assert chunk_plan(1000, 4) == 62
        assert self._chunks(1000, 4) == 17

    def test_exact_chunk_counts_pinned(self):
        # (n_items, workers) -> chunk count, pinned so heuristic
        # changes are deliberate.
        expected = {
            (1, 2): 1, (4, 2): 1, (8, 2): 2, (16, 2): 4,
            (40, 2): 8, (40, 4): 10, (100, 2): 9, (2171, 2): 9,
        }
        actual = {key: self._chunks(*key) for key in expected}
        assert actual == expected

    def test_never_zero_or_oversized(self):
        for n in (1, 2, 5, 17, 63, 400):
            for workers in (1, 2, 3, 8):
                size = chunk_plan(n, workers)
                assert 1 <= size <= n


# ----------------------------------------------------------------------
class TestRoutingContext:
    def test_pair_is_cached(self, topo):
        ctx = RoutingContext()
        r1, p1 = ctx.pair(topo)
        r2, p2 = ctx.pair(topo)
        assert r1 is r2 and p1 is p2
        assert ctx.builds == 1 and ctx.hits == 1
        assert isinstance(r1, BGPRouting)
        assert isinstance(p1, PhysicalNetwork)

    def test_down_cables_share_one_pair(self, topo):
        # Cuts are per-query on both BGPRouting and PhysicalNetwork, so
        # every down-set must reuse the same built pair.
        ctx = RoutingContext()
        r1, _ = ctx.pair(topo)
        r2, _ = ctx.pair(topo, down_cables=(1, 2))
        assert r1 is r2
        assert ctx.builds == 1

    def test_distinct_topologies_get_distinct_pairs(self, topo):
        ctx = RoutingContext()
        other = topo.structured_copy()
        r1, _ = ctx.pair(topo)
        r2, _ = ctx.pair(other)
        assert r1 is not r2
        assert ctx.builds == 2

    def test_invalidate_forces_rebuild(self, topo):
        ctx = RoutingContext()
        r1, _ = ctx.pair(topo)
        ctx.invalidate(topo)
        r2, _ = ctx.pair(topo)
        assert r1 is not r2

    def test_lru_eviction_bounds_the_cache(self, topo):
        ctx = RoutingContext(maxsize=2)
        first = topo.structured_copy()
        second = topo.structured_copy()
        third = topo.structured_copy()
        ctx.pair(first)
        ctx.pair(second)
        ctx.pair(first)        # refresh: first is now most recent
        ctx.pair(third)        # evicts second, the least recent
        assert id(second) not in ctx._pairs
        assert id(first) in ctx._pairs and id(third) in ctx._pairs
        assert len(ctx._pairs) == 2

    def test_module_helpers_use_singleton(self, topo):
        routing, phys = pair_for(topo)
        assert routing_for(topo) is routing
        assert CONTEXT.pair(topo) == (routing, phys)


# ----------------------------------------------------------------------
class TestRoutingContextThreadSafety:
    """The threaded HTTP service hits one shared context concurrently;
    lookups, builds, eviction and invalidation must never corrupt the
    LRU or hand a caller a half-built pair."""

    def test_concurrent_pair_hammer(self, topo):
        import threading

        ctx = RoutingContext(maxsize=2)
        topos = [topo, topo.structured_copy(), topo.structured_copy()]
        errors: list[BaseException] = []
        barrier = threading.Barrier(8)

        def hammer(i: int) -> None:
            try:
                barrier.wait(timeout=10)
                for n in range(60):
                    t = topos[(i + n) % len(topos)]
                    routing, phys = ctx.pair(t)
                    # A returned pair must be fully built and belong
                    # to the topology that was asked for.
                    assert isinstance(routing, BGPRouting)
                    assert isinstance(phys, PhysicalNetwork)
                    assert routing._topo is t
                    if n % 17 == 0:
                        ctx.invalidate(t)
            except BaseException as exc:  # noqa: BLE001 - collected
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors, errors
        assert len(ctx._pairs) <= 2
        # Every lookup either hit or built; nothing was lost to races.
        assert ctx.hits + ctx.builds == 8 * 60

    def test_concurrent_single_topology_builds_once(self, topo):
        import threading

        ctx = RoutingContext()
        other = topo.structured_copy()
        barrier = threading.Barrier(6)
        results: list = []

        def fetch() -> None:
            barrier.wait(timeout=10)
            results.append(ctx.pair(other))

        threads = [threading.Thread(target=fetch) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert len(results) == 6
        # All racers share the single built pair: the lock makes the
        # build atomic instead of N threads constructing N pairs.
        assert all(r == results[0] for r in results)
        assert ctx.builds == 1 and ctx.hits == 5


# ----------------------------------------------------------------------
class TestPrecompute:
    def test_precompute_matches_lazy_tables(self, topo):
        dests = sorted(topo.ases)[:6]
        lazy = BGPRouting(topo)
        expected = {d: lazy.routes_to(d) for d in dests}
        warmed = BGPRouting(topo)
        computed = warmed.precompute(dests, workers=1)
        assert computed == len(dests)
        assert {d: warmed.routes_to(d) for d in dests} == expected
        # Second call is a no-op: everything is cached.
        assert warmed.precompute(dests, workers=1) == 0

    @needs_fork
    def test_parallel_precompute_identical(self, topo):
        dests = sorted(topo.ases)[:8]
        serial = BGPRouting(topo)
        serial.precompute(dests, workers=1)
        parallel = BGPRouting(topo)
        parallel.precompute(dests, workers=2)
        for d in dests:
            assert parallel.routes_to(d) == serial.routes_to(d)

    def test_precompute_rejects_unknown_destination(self, topo):
        with pytest.raises(KeyError):
            BGPRouting(topo).precompute([max(topo.ases) + 1], workers=1)
