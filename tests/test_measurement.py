"""Measurement layer: probes, traceroute/ping, geolocation, detection."""

import pytest

from repro.datasets import probe_target_ip
from repro.geo import Region
from repro.measurement import (
    AccessTech,
    GeolocationService,
    IXPDirectory,
    IXPDirectoryEntry,
    MeasurementEngine,
    ProbeKind,
    build_atlas_platform,
    build_observatory_platform,
    detect_ixp_crossings,
    slash24s_of,
    traverses_ixp,
)
from repro.measurement.responsiveness import DEFAULT_RESPONSE_MODEL
from repro.topology import ASKind, Prefix


class TestPlatforms:
    def test_atlas_bias_toward_mature_markets(self, topo, atlas):
        per_as = {}
        for region in Region:
            ases = [a for a in topo.ases_in_region(region)
                    if a.kind.is_eyeball or a.kind is ASKind.EDUCATION]
            probes = atlas.in_region(region)
            if ases:
                per_as[region] = len(probes) / len(ases)
        assert per_as[Region.EUROPE] > per_as[Region.WESTERN_AFRICA]
        assert per_as[Region.EUROPE] > per_as[Region.CENTRAL_AFRICA]

    def test_atlas_underrepresents_mobile(self, topo, atlas):
        african = [p for p in atlas.probes if p.region.is_african]
        mobile_share = sum(p.is_mobile for p in african) / len(african)
        population_share = 0.8  # §7.1: mobile dominates last mile
        assert mobile_share < population_share / 2

    def test_atlas_determinism(self, topo):
        a = build_atlas_platform(topo)
        b = build_atlas_platform(topo)
        assert [p.probe_id for p in a.probes] == \
            [p.probe_id for p in b.probes]
        assert [p.asn for p in a.probes] == [p.asn for p in b.probes]

    def test_observatory_dual_uplink(self, topo):
        platform = build_observatory_platform(topo, [36924])
        probe = platform.probes[0]
        assert probe.kind is ProbeKind.RASPBERRY_PI
        assert AccessTech.CELLULAR in probe.uplinks()

    def test_observatory_mobile_hosts_get_handsets(self, topo):
        mobile_asn = next(a.asn for a in topo.african_ases()
                          if a.kind is ASKind.MOBILE)
        platform = build_observatory_platform(topo, [mobile_asn])
        assert platform.probes[0].kind is ProbeKind.MOBILE_HANDSET


class TestTraceroute:
    def test_reaches_target(self, topo, engine, atlas):
        african = [p for p in atlas.probes if p.region.is_african]
        src = african[0]
        dst = african[-1]
        target = probe_target_ip(topo, dst)
        trace = engine.traceroute(src, target)
        assert trace.dst_asn == dst.asn
        assert trace.hops
        assert trace.hops[0].asn == src.asn

    def test_rtts_cumulative(self, topo, engine, atlas):
        african = [p for p in atlas.probes if p.region.is_african]
        target = probe_target_ip(topo, african[-1])
        trace = engine.traceroute(african[0], target)
        rtts = [h.rtt_ms for h in trace.hops if h.rtt_ms is not None]
        if len(rtts) >= 2:
            # Jitter aside, later hops are slower than the first one.
            assert rtts[-1] + 10 > rtts[0]

    def test_hop_ips_belong_to_hop_as_or_fabric(self, topo, engine,
                                                atlas):
        african = [p for p in atlas.probes if p.region.is_african]
        for src in african[:4]:
            target = probe_target_ip(topo, african[-1])
            trace = engine.traceroute(src, target)
            for hop in trace.responding_hops():
                owner = topo.as_for_ip(hop.ip)
                ixp = topo.ixp_for_ip(hop.ip)
                assert owner is not None or ixp is not None

    def test_unroutable_target(self, engine, atlas):
        trace = engine.traceroute(atlas.probes[0],
                                  Prefix.parse("240.0.0.0/24").network)
        assert not trace.reached and trace.dst_asn is None

    def test_bytes_accounted(self, topo, engine, atlas):
        target = probe_target_ip(topo, atlas.probes[-1])
        trace = engine.traceroute(atlas.probes[0], target)
        assert trace.bytes_used > 0

    def test_ping(self, topo, engine, atlas):
        african = [p for p in atlas.probes if p.region.is_african]
        target = probe_target_ip(topo, african[-1])
        result = engine.ping(african[0], target, count=8)
        assert 0 <= result.received <= 8
        if result.received:
            assert result.rtt_ms > 0
            assert result.loss_rate < 1.0

    def test_ping_bytes_scale_with_count(self, topo, engine, atlas):
        """Regression: ping once billed a fixed 4 packets regardless of
        ``count``, undercounting wire bytes in the budget model."""
        from repro.measurement import PING_BYTES_PER_PACKET
        african = [p for p in atlas.probes if p.region.is_african]
        target = probe_target_ip(topo, african[-1])
        for count in (1, 4, 16):
            result = engine.ping(african[0], target, count=count)
            assert result.bytes_used == count * PING_BYTES_PER_PACKET
        # Unroutable and unresolved pings still put packets on the wire.
        lost = engine.ping(african[0],
                           Prefix.parse("240.0.0.0/24").network, count=3)
        assert lost.bytes_used == 3 * PING_BYTES_PER_PACKET

    def test_ping_rejects_nonpositive_count(self, topo, engine, atlas):
        target = probe_target_ip(topo, atlas.probes[-1])
        with pytest.raises(ValueError):
            engine.ping(atlas.probes[0], target, count=0)

    def test_ping_feeds_wire_byte_counter(self, topo, engine, atlas):
        from repro import telemetry
        from repro.measurement import PING_BYTES_PER_PACKET
        target = probe_target_ip(topo, atlas.probes[-1])
        was = telemetry.enabled()
        telemetry.enable()
        try:
            metric = telemetry.REGISTRY.get(
                "repro_measurement_wire_bytes_total")
            before = metric.value
            engine.ping(atlas.probes[0], target, count=5)
            assert metric.value - before == 5 * PING_BYTES_PER_PACKET
        finally:
            if not was:
                telemetry.disable()


class TestTargetResolution:
    def test_fabric_roundtrip_every_member(self, topo, engine):
        """``resolve_target_asn`` must invert ``IXP.lan_ip_for`` for
        every member of every fabric (smallest ASN on collisions,
        matching the sorted assignment order)."""
        for ixp in topo.ixps.values():
            claimed: dict[int, int] = {}
            for member in sorted(ixp.members):
                claimed.setdefault(ixp.lan_ip_for(member), member)
            for member in sorted(ixp.members):
                ip = ixp.lan_ip_for(member)
                assert engine.resolve_target_asn(ip) == claimed[ip]

    def test_unassigned_fabric_ip_resolves_to_none(self, topo, engine):
        ixp = max(topo.ixps.values(), key=lambda x: len(x.members))
        assigned = {ixp.lan_ip_for(m) for m in ixp.members}
        lan = ixp.lan_prefix
        free = next(ip for ip in range(lan.network + 1,
                                       lan.network + lan.size - 1)
                    if ip not in assigned)
        assert engine.resolve_target_asn(free) is None


class TestGeolocation:
    def test_deterministic(self, topo):
        geo = GeolocationService(topo)
        a = topo.african_ases()[0]
        ip = a.prefixes[0].network + 9
        assert geo.locate(ip).iso2 == geo.locate(ip).iso2

    def test_africa_error_rate_calibrated(self, topo):
        geo = GeolocationService(topo)
        correct = total = 0
        for a in topo.african_ases():
            for i in range(3):
                ip = a.prefixes[0].network + 100 + i
                answer = geo.locate(ip)
                total += 1
                correct += answer.correct
        # Nominal accuracy is 0.72, but "operator HQ" mislocations are
        # no-ops for single-country stubs, so the effective rate is a
        # bit higher.
        assert 0.65 < correct / total < 0.92

    def test_reference_more_accurate(self, topo):
        geo = GeolocationService(topo)
        scores = {}
        for is_african in (True, False):
            ases = [a for a in topo.ases.values()
                    if a.is_african == is_african]
            correct = total = 0
            for a in ases:
                ip = a.prefixes[0].network + 50
                total += 1
                correct += geo.locate(ip).correct
            scores[is_african] = correct / total
        assert scores[False] > scores[True]

    def test_unknown_space(self, topo):
        geo = GeolocationService(topo)
        answer = geo.locate(Prefix.parse("240.0.0.0/24").network)
        assert answer.iso2 is None


class TestIXPDetection:
    def test_detects_fabric_hop(self, topo, engine, atlas):
        directory = IXPDirectory(entries=[
            IXPDirectoryEntry(x.ixp_id, x.name, x.country_iso2,
                              x.lan_prefix)
            for x in topo.ixps.values()])
        found = 0
        african = [p for p in atlas.probes if p.region.is_african]
        for src in african[:15]:
            for dst in african[:15]:
                if src.asn == dst.asn:
                    continue
                trace = engine.traceroute(src, probe_target_ip(topo, dst))
                crossings = detect_ixp_crossings(trace, directory)
                for crossing in crossings:
                    assert directory.lookup(crossing.fabric_ip) is not None
                found += bool(crossings)
        assert found > 0

    def test_empty_directory_detects_nothing(self, topo, engine, atlas):
        directory = IXPDirectory()
        african = [p for p in atlas.probes if p.region.is_african]
        trace = engine.traceroute(african[0],
                                  probe_target_ip(topo, african[1]))
        assert not traverses_ixp(trace, directory)


class TestResponsiveness:
    def test_slash24s(self, topo):
        a = topo.african_ases()[0]
        expected = sum(p.slash24_count() for p in a.prefixes)
        assert slash24s_of(topo, a.asn) == expected

    def test_harvested_beats_random(self, topo):
        model = DEFAULT_RESPONSE_MODEL
        for a in topo.african_ases()[:20]:
            assert model.harvested(topo, a.asn) > model.random(topo, a.asn)
