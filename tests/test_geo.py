"""Geography substrate: regions, country registry, distances."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geo import (
    AFRICAN_COUNTRIES,
    AFRICAN_REGIONS,
    COUNTRIES,
    REFERENCE_REGIONS,
    Region,
    country,
    countries_in_region,
    fiber_rtt_ms,
    haversine_km,
    path_length_km,
)
from repro.geo.distance import centroid, EARTH_RADIUS_KM


class TestRegions:
    def test_five_african_regions(self):
        assert len(AFRICAN_REGIONS) == 5
        assert all(r.is_african for r in AFRICAN_REGIONS)

    def test_reference_regions_not_african(self):
        assert all(not r.is_african for r in REFERENCE_REGIONS)

    def test_continent_label(self):
        assert Region.WESTERN_AFRICA.continent == "Africa"
        assert Region.EUROPE.continent == "Europe"

    def test_no_overlap(self):
        assert set(AFRICAN_REGIONS).isdisjoint(REFERENCE_REGIONS)


class TestCountries:
    def test_54_african_countries(self):
        assert len(AFRICAN_COUNTRIES) == 54

    def test_lookup(self):
        gh = country("GH")
        assert gh.name == "Ghana"
        assert gh.region is Region.WESTERN_AFRICA
        assert gh.coastal

    def test_unknown_country(self):
        with pytest.raises(KeyError):
            country("XX")

    def test_landlocked_examples(self):
        for cc in ("RW", "UG", "ET", "ML", "BW", "ZM"):
            assert not country(cc).coastal, cc

    def test_every_country_in_exactly_one_region(self):
        seen = set()
        for region in list(AFRICAN_REGIONS) + list(REFERENCE_REGIONS):
            for c in countries_in_region(region):
                assert c.iso2 not in seen
                seen.add(c.iso2)
        assert seen == set(COUNTRIES)

    def test_grid_reliability_bounds(self):
        for c in COUNTRIES.values():
            assert 0.0 < c.grid_reliability <= 1.0
            assert 0.0 < c.mobile_share <= 1.0

    def test_mobile_dominates_african_last_mile(self):
        african = [c.mobile_share for c in AFRICAN_COUNTRIES.values()]
        european = [c.mobile_share for c in COUNTRIES.values()
                    if c.region is Region.EUROPE]
        assert min(african) > max(european)

    def test_bad_coordinates_rejected(self):
        from repro.geo.countries import Country
        with pytest.raises(ValueError):
            Country("ZZ", "Nowhere", Region.EUROPE, 99.0, 0.0, 1.0)


class TestHaversine:
    def test_known_distance_accra_lagos(self):
        accra, lagos = country("GH"), country("NG")
        d = haversine_km(accra.lat, accra.lon, lagos.lat, lagos.lon)
        assert 350 < d < 450  # ~400 km

    def test_zero_distance(self):
        assert haversine_km(5.0, 5.0, 5.0, 5.0) == 0.0

    @given(st.floats(-90, 90), st.floats(-180, 180),
           st.floats(-90, 90), st.floats(-180, 180))
    def test_symmetry(self, lat1, lon1, lat2, lon2):
        d1 = haversine_km(lat1, lon1, lat2, lon2)
        d2 = haversine_km(lat2, lon2, lat1, lon1)
        assert math.isclose(d1, d2, rel_tol=1e-9, abs_tol=1e-9)

    @given(st.floats(-90, 90), st.floats(-180, 180),
           st.floats(-90, 90), st.floats(-180, 180))
    def test_bounded_by_half_circumference(self, lat1, lon1, lat2, lon2):
        d = haversine_km(lat1, lon1, lat2, lon2)
        assert 0.0 <= d <= math.pi * EARTH_RADIUS_KM + 1e-6

    @given(st.floats(-90, 90), st.floats(-180, 180),
           st.floats(-90, 90), st.floats(-180, 180),
           st.floats(-90, 90), st.floats(-180, 180))
    def test_triangle_inequality(self, a1, o1, a2, o2, a3, o3):
        d12 = haversine_km(a1, o1, a2, o2)
        d23 = haversine_km(a2, o2, a3, o3)
        d13 = haversine_km(a1, o1, a3, o3)
        assert d13 <= d12 + d23 + 1e-6


class TestLatency:
    def test_fiber_rtt_scales_with_distance(self):
        assert fiber_rtt_ms(2000) > fiber_rtt_ms(1000) > 0

    def test_per_hop_overhead_added(self):
        assert fiber_rtt_ms(100, per_hop_ms=5.0) == pytest.approx(
            fiber_rtt_ms(100) + 5.0)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            fiber_rtt_ms(-1.0)

    def test_path_length(self):
        pts = [(0.0, 0.0), (0.0, 1.0), (0.0, 2.0)]
        assert path_length_km(pts) == pytest.approx(
            2 * haversine_km(0, 0, 0, 1), rel=1e-6)
        assert path_length_km(pts[:1]) == 0.0

    def test_centroid(self):
        assert centroid([(0.0, 0.0), (2.0, 2.0)]) == (1.0, 1.0)
        with pytest.raises(ValueError):
            centroid([])
