"""Platform-bias analysis and the LEO what-if."""

import pytest

from repro.analysis import analyze_platform_bias, total_variation
from repro.measurement import build_observatory_platform
from repro.observatory import (
    PlacementObjective,
    WhatIfLEOBackup,
    place_probes,
)
from repro.outages import march_2024_scenario


class TestTotalVariation:
    def test_identical_distributions(self):
        assert total_variation({"a": 2, "b": 2}, {"a": 1, "b": 1}) == 0.0

    def test_disjoint_distributions(self):
        assert total_variation({"a": 1}, {"b": 1}) == pytest.approx(1.0)

    def test_bounds(self):
        tv = total_variation({"a": 3, "b": 1}, {"a": 1, "b": 3})
        assert 0.0 < tv < 1.0

    def test_empty_is_safe(self):
        assert total_variation({}, {"a": 1}) == pytest.approx(0.5)


class TestPlatformBias:
    def test_atlas_biased_against_mobile(self, topo, atlas):
        report = analyze_platform_bias(topo, atlas)
        access = report.dimension("access technology")
        assert access is not None
        assert access.most_under == "cellular"
        assert access.tv_distance > 0.3

    def test_four_dimensions(self, topo, atlas):
        report = analyze_platform_bias(topo, atlas)
        assert len(report.dimensions) == 4
        for dim in report.dimensions:
            assert 0.0 <= dim.tv_distance <= 1.0

    def test_mobile_placement_reduces_access_bias(self, topo, atlas):
        hosts = place_probes(topo,
                             PlacementObjective.MOBILE_REPRESENTATIVE,
                             budget=40)
        observatory = build_observatory_platform(topo, hosts)
        atlas_bias = analyze_platform_bias(topo, atlas)
        obs_bias = analyze_platform_bias(topo, observatory)
        assert obs_bias.dimension("access technology").tv_distance < \
            atlas_bias.dimension("access technology").tv_distance

    def test_empty_platform(self, topo):
        from repro.measurement import ProbePlatform
        report = analyze_platform_bias(topo, ProbePlatform(name="none"))
        assert report.dimensions == []

    def test_worst_dimension(self, topo, atlas):
        report = analyze_platform_bias(topo, atlas)
        worst = report.worst_dimension()
        assert worst.tv_distance == max(d.tv_distance
                                        for d in report.dimensions)


class TestLEO:
    def test_leo_reduces_severity(self, topo):
        west, _ = march_2024_scenario(topo)
        leo = WhatIfLEOBackup(topo, leo_capacity_tbps=2.0)
        outcome = leo.cut_severity("GH", west)
        assert outcome.modified < outcome.baseline

    def test_leo_matters_most_for_small_markets(self, topo):
        west, _ = march_2024_scenario(topo)
        leo = WhatIfLEOBackup(topo, leo_capacity_tbps=2.0)
        gm = leo.cut_severity("GM", west)   # tiny market, hit hard
        ng = leo.cut_severity("NG", west)   # big market
        if gm.baseline > 0 and ng.baseline > 0:
            assert abs(gm.relative_change) >= abs(ng.relative_change)

    def test_failover_rtt_bounded(self, topo):
        west, _ = march_2024_scenario(topo)
        leo = WhatIfLEOBackup(topo)
        outcome = leo.failover_rtt_penalty("GH", "DE", west)
        assert outcome.modified <= outcome.baseline + leo.LEO_RTT_MS
