"""Max-flow analyzer and the stakeholder report."""

import pytest

from repro.routing import FlowAnalyzer
from repro.observatory import generate_report
from repro.outages import march_2024_scenario


@pytest.fixture(scope="module")
def flows(topo, phys):
    return FlowAnalyzer(topo, phys)


class TestFlows:
    def test_core_reachable_from_coastal_africa(self, flows):
        assert flows.capacity_to_core("GH") > 0
        assert flows.capacity_to_core("KE") > 0

    def test_landlocked_capacity_small(self, flows):
        """Landlocked countries are bottlenecked by terrestrial links."""
        assert flows.capacity_to_core("RW") < \
            flows.capacity_to_core("KE") / 10

    def test_cut_reduces_flow_for_affected(self, topo, flows):
        west, _ = march_2024_scenario(topo)
        assert flows.flow_severity("GH", west) > 0
        assert flows.flow_severity("KE", west) == pytest.approx(0.0)

    def test_total_cut_disconnects_islands(self, topo, flows):
        all_cables = [c.cable_id for c in topo.cables]
        assert flows.is_disconnected("MU", all_cables)
        # Landlocked mainland is also cut off without any cables.
        assert flows.is_disconnected("RW", all_cables)

    def test_severity_bounds(self, topo, flows):
        west, _ = march_2024_scenario(topo)
        for cc in ("GH", "CI", "NG", "ZA"):
            assert 0.0 <= flows.flow_severity(cc, west) <= 1.0

    def test_flow_monotone_in_cuts(self, topo, flows):
        west, _ = march_2024_scenario(topo)
        partial = flows.capacity_to_core("GH", west[:2])
        full = flows.capacity_to_core("GH", west)
        assert full <= partial <= flows.capacity_to_core("GH")


class TestStakeholderReport:
    @pytest.fixture(scope="class")
    def report(self, topo):
        return generate_report(topo, max_pairs=200)

    def test_headline_numbers_populated(self, report):
        assert 0.0 < report.detour_rate <= 1.0
        assert 0.0 < report.content_locality < 1.0
        assert 0.0 <= report.compliance_rate < 1.0
        assert report.most_mature_region == "Southern Africa"

    def test_text_sections(self, report):
        for marker in ("QUARTERLY CONNECTIVITY REPORT",
                       "Headline indicators",
                       "Regional maturity ranking",
                       "Measurement readiness", "Watchdog:"):
            assert marker in report.text

    def test_title_underline_single(self, report):
        assert report.text.count("QUARTERLY CONNECTIVITY REPORT") == 1

    def test_consistent_with_direct_analysis(self, topo, report):
        from repro.analysis import analyze_content_locality
        from repro.datasets import run_pulse_study
        direct = analyze_content_locality(run_pulse_study(topo))
        assert report.content_locality == pytest.approx(
            direct.overall_africa_share())
