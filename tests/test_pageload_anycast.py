"""Application-layer measurement: page loads and anycast catchments."""

import pytest

from repro.geo import AFRICAN_COUNTRIES, country
from repro.measurement import (
    AccessTech,
    AnycastMeasurement,
    AnycastService,
    AnycastSite,
    PageLoadSimulator,
    ThirdPartyKind,
    dependencies_of,
    run_pageload_study,
    services_from_topology,
)
from repro.outages import march_2024_scenario


@pytest.fixture(scope="module")
def west_cut(topo):
    return march_2024_scenario(topo)[0]


class TestDependencies:
    def test_deterministic_per_domain(self, topo):
        site = topo.websites["GH"][0]
        assert dependencies_of(site) == dependencies_of(site)

    def test_analytics_always_present(self, topo):
        for site in topo.websites["KE"][:20]:
            kinds = {d.kind for d in dependencies_of(site)}
            assert ThirdPartyKind.ANALYTICS in kinds

    def test_critical_flags(self):
        assert ThirdPartyKind.PAYMENT_API.critical
        assert not ThirdPartyKind.ANALYTICS.critical


class TestPageLoad:
    def test_baseline_loads_succeed(self, topo, phys):
        study = run_pageload_study(topo, phys, "KE",
                                   sites_per_client=5)
        assert study.results
        assert study.failure_rate() < 0.1
        assert study.median_load_ms() > 0

    def test_cable_cut_breaks_pages(self, topo, phys, west_cut):
        base = run_pageload_study(topo, phys, "GH", sites_per_client=5)
        cut = run_pageload_study(topo, phys, "GH", sites_per_client=5,
                                 down_cables=west_cut)
        assert cut.failure_rate() > base.failure_rate() + 0.2

    def test_unaffected_country_stable(self, topo, phys, west_cut):
        base = run_pageload_study(topo, phys, "KE", sites_per_client=4)
        cut = run_pageload_study(topo, phys, "KE", sites_per_client=4,
                                 down_cables=west_cut)
        assert cut.failure_rate() <= base.failure_rate() + 0.05

    def test_cellular_slower_than_fixed(self, topo, phys):
        cellular = run_pageload_study(topo, phys, "NG",
                                      sites_per_client=5,
                                      access=AccessTech.CELLULAR)
        fixed = run_pageload_study(topo, phys, "NG", sites_per_client=5,
                                   access=AccessTech.FIXED)
        if cellular.median_load_ms() and fixed.median_load_ms():
            assert cellular.median_load_ms() > fixed.median_load_ms()

    def test_failure_reasons_populated(self, topo, phys, west_cut):
        study = run_pageload_study(topo, phys, "GH", sites_per_client=6,
                                   down_cables=west_cut)
        failures = [r for r in study.results if not r.ok]
        assert failures
        assert all(r.failure_reason for r in failures)

    def test_components_sum_plausibly(self, topo, phys):
        simulator = PageLoadSimulator(topo, phys)
        client = next(a.asn for a in topo.ases_in_country("ZA")
                      if a.asn in topo.resolver_configs)
        result = simulator.load(client, topo.websites["ZA"][0])
        if result.ok:
            parts = (result.dns_ms or 0) + (result.handshake_ms or 0) \
                + (result.transfer_ms or 0)
            assert result.total_ms > parts * 0.5


class TestAnycast:
    def test_validation(self):
        with pytest.raises(ValueError):
            AnycastService("empty", 1, ())

    def test_local_site_always_wins_at_home(self, topo, phys):
        am = AnycastMeasurement(topo, phys)
        service = AnycastService("test", 1, (
            AnycastSite("ZA", 1.0), AnycastSite("DE", 3.0)))
        observation = am.catchment("ZA", service)
        assert observation is not None

    def test_census_covers_services(self, topo, phys):
        am = AnycastMeasurement(topo, phys)
        census = am.census(["GH", "KE"],
                           services_from_topology(topo))
        services = {o.service for o in census.observations}
        assert len(services) >= 5

    def test_african_clients_drain_to_europe(self, topo, phys):
        """§4.2's catchment story: a substantial share of African
        clients lands on non-African sites despite African PoPs."""
        am = AnycastMeasurement(topo, phys)
        census = am.census(sorted(AFRICAN_COUNTRIES))
        locality = census.african_locality()
        assert 0.2 < locality < 0.8
        sites = census.site_distribution()
        assert any(not country(cc).is_african for cc in sites)

    def test_cable_cut_shifts_catchments(self, topo, phys, west_cut):
        am = AnycastMeasurement(topo, phys)
        base = am.census(["GH", "CI", "SN"])
        cut = am.census(["GH", "CI", "SN"], down_cables=west_cut)
        base_sites = {(o.client_cc, o.service): o.site_cc
                      for o in base.observations}
        cut_sites = {(o.client_cc, o.service): o.site_cc
                     for o in cut.observations}
        # At least some catchments move when the corridor dies.
        moved = sum(1 for k in base_sites
                    if k in cut_sites and cut_sites[k] != base_sites[k])
        lost = sum(1 for k in base_sites if k not in cut_sites)
        assert moved + lost > 0

    def test_deterministic(self, topo, phys):
        am = AnycastMeasurement(topo, phys)
        a = am.census(["GH"]).site_distribution()
        b = am.census(["GH"]).site_distribution()
        assert a == b
