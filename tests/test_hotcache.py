"""repro.service.hotcache: the bounded in-memory hot tier.

Unit-level contracts: exact byte accounting under the LRU budget,
recency ordering, oversized-payload refusal, invalidation, the
disabled (0-byte) mode, and thread safety under a concurrent hammer.
The *composition* contracts — byte identity with disk and cold reads,
304s, degraded serving, store-hook invalidation — live in
``tests/test_service.py::TestHotTierComposition``.
"""

from __future__ import annotations

import threading

from repro.service.hotcache import HotCache


def _etag(payload: bytes) -> str:
    return f'"{payload.hex()}"'


class TestBasics:
    def test_get_put_roundtrip(self):
        cache = HotCache(max_bytes=1024)
        assert cache.get("k1") is None
        cache.put("k1", b"payload", _etag(b"payload"))
        assert cache.get("k1") == (b"payload", _etag(b"payload"))
        assert cache.hits == 1
        assert cache.misses == 1

    def test_put_same_key_replaces_accounting(self):
        cache = HotCache(max_bytes=1024)
        cache.put("k", b"aaaa", "a")
        cache.put("k", b"bb", "b")
        assert cache.total_bytes() == 2
        assert len(cache) == 1
        assert cache.get("k") == (b"bb", "b")

    def test_len_and_stats(self):
        cache = HotCache(max_bytes=100)
        cache.put("a", b"x" * 10, "a")
        cache.put("b", b"y" * 20, "b")
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["bytes"] == 30
        assert stats["max_bytes"] == 100
        assert stats["enabled"] is True


class TestEviction:
    def test_lru_evicts_oldest_first(self):
        cache = HotCache(max_bytes=30)
        cache.put("a", b"x" * 10, "a")
        cache.put("b", b"y" * 10, "b")
        cache.put("c", b"z" * 10, "c")
        assert len(cache) == 3
        cache.put("d", b"w" * 10, "d")     # evicts "a"
        assert cache.get("a") is None
        assert cache.get("d") is not None
        assert cache.evictions == 1

    def test_get_bumps_recency(self):
        cache = HotCache(max_bytes=30)
        cache.put("a", b"x" * 10, "a")
        cache.put("b", b"y" * 10, "b")
        cache.put("c", b"z" * 10, "c")
        cache.get("a")                      # "b" is now the LRU
        cache.put("d", b"w" * 10, "d")
        assert cache.get("a") is not None
        assert cache.get("b") is None

    def test_oversized_payload_never_admitted(self):
        cache = HotCache(max_bytes=8)
        cache.put("small", b"1234", "s")
        cache.put("huge", b"x" * 64, "h")  # larger than the budget
        assert cache.get("huge") is None
        assert cache.get("small") is not None  # working set survived
        assert cache.total_bytes() == 4

    def test_byte_accounting_exact_after_churn(self):
        cache = HotCache(max_bytes=50)
        for i in range(40):
            cache.put(f"k{i}", bytes(i % 13), f"e{i}")
        expected = 0
        live = 0
        for i in range(40):
            entry = cache.get(f"k{i}")
            if entry is not None:
                expected += len(entry[0])
                live += 1
        assert cache.total_bytes() == expected
        assert len(cache) == live
        assert cache.total_bytes() <= 50


class TestInvalidation:
    def test_invalidate_drops_entry_and_bytes(self):
        cache = HotCache(max_bytes=100)
        cache.put("a", b"x" * 10, "a")
        assert cache.invalidate("a") is True
        assert cache.get("a") is None
        assert cache.total_bytes() == 0
        assert cache.invalidations == 1

    def test_invalidate_unknown_key_is_noop(self):
        cache = HotCache(max_bytes=100)
        assert cache.invalidate("ghost") is False
        assert cache.invalidations == 0

    def test_clear_counts_invalidations(self):
        cache = HotCache(max_bytes=100)
        cache.put("a", b"1", "a")
        cache.put("b", b"2", "b")
        cache.clear()
        assert len(cache) == 0
        assert cache.total_bytes() == 0
        assert cache.invalidations == 2


class TestDisabled:
    def test_zero_budget_disables(self):
        cache = HotCache(max_bytes=0)
        assert cache.enabled is False
        cache.put("k", b"data", "e")
        assert cache.get("k") is None
        assert len(cache) == 0
        assert cache.stats()["enabled"] is False

    def test_negative_budget_disables(self):
        cache = HotCache(max_bytes=-1)
        assert cache.enabled is False


class TestThreadSafety:
    def test_concurrent_hammer_keeps_invariants(self):
        """Many threads get/put/invalidate concurrently; afterwards
        the byte ledger must exactly match the surviving entries and
        never have exceeded the budget by observation."""
        cache = HotCache(max_bytes=4096)
        payloads = {f"key-{i}": bytes([i % 251]) * (i % 97 + 1)
                    for i in range(64)}
        errors: list[BaseException] = []
        start = threading.Barrier(8)

        def hammer(worker: int) -> None:
            try:
                start.wait(timeout=10)
                for round_ in range(300):
                    key = f"key-{(worker * 131 + round_) % 64}"
                    payload = payloads[key]
                    entry = cache.get(key)
                    if entry is not None:
                        got, etag = entry
                        assert got == payload, "corrupted payload"
                        assert etag == key, "etag mismatch"
                    else:
                        cache.put(key, payload, key)
                    if round_ % 17 == 0:
                        cache.invalidate(key)
                    assert 0 <= cache.total_bytes() <= 4096
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors, errors

        # Final ledger: stored bytes equal the sum of live payloads.
        live = sum(len(payloads[k]) for k in payloads
                   if cache.get(k) is not None)
        assert cache.total_bytes() == live
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] > 0
