"""End-to-end pipeline: world -> measurements -> every paper analysis.

These are the repo's own "does the reproduction hold together" checks:
each test walks one experiment's full pipeline at reduced sample sizes.
"""

import pytest

from repro import build_world, WorldParams
from repro.analysis import (
    analyze_content_locality,
    analyze_dns_locality,
    analyze_growth,
    analyze_nautilus,
    analyze_outages,
    analyze_snapshot,
    build_coverage_table,
)
from repro.datasets import (
    build_delegated_file,
    build_ixp_directory,
    build_radar_feed,
    build_resolver_usage,
    collect_snapshot,
    run_pulse_study,
)
from repro.measurement import (
    GeolocationService,
    MeasurementEngine,
    build_atlas_platform,
    run_ant_hitlist,
)
from repro.outages import OutageSimulator
from repro.observatory import ixp_cover_hosts
from repro.routing import BGPRouting, PhysicalNetwork


class TestFullPipeline:
    def test_fig2a_pipeline(self, topo, engine, atlas):
        snapshot = collect_snapshot(topo, engine, atlas, max_pairs=150)
        report = analyze_snapshot(topo, snapshot, GeolocationService(topo),
                                  build_ixp_directory(topo))
        assert report.classifications
        assert 0.0 <= report.detour_rate() <= 1.0

    def test_fig4_pipeline(self, topo, phys):
        sim = OutageSimulator(topo, phys).simulate(years=1.0)
        feed = build_radar_feed(sim, seed=1)
        report = analyze_outages(sim, feed)
        assert report.rows
        assert report.africa_rate_per_country_year > 0

    def test_table1_pipeline(self, topo):
        table = build_coverage_table(
            topo, build_delegated_file(topo), [run_ant_hitlist(topo)])
        assert table.rows[0].entries > 0

    def test_cross_analysis_consistency(self, topo):
        """Content study and resolver records describe the same world."""
        content = analyze_content_locality(run_pulse_study(topo))
        dns = analyze_dns_locality(build_resolver_usage(topo))
        growth = analyze_growth(topo)
        content_regions = {r.region for r in content.rows}
        dns_regions = {r.region for r in dns.rows if r.region.is_african}
        assert content_regions == dns_regions
        assert growth.africa().ixps_after == len(topo.african_ixps())

    def test_nautilus_pipeline(self, topo, phys, engine, atlas):
        snapshot = collect_snapshot(topo, engine, atlas, max_pairs=80)
        report = analyze_nautilus(topo, phys, snapshot,
                                  GeolocationService(topo))
        assert len(report.inferences) == 80


class TestDeterminismEndToEnd:
    def test_same_seed_same_analysis(self):
        results = []
        for _ in range(2):
            topo = build_world(params=WorldParams(seed=31337))
            routing = BGPRouting(topo)
            phys = PhysicalNetwork(topo)
            engine = MeasurementEngine(topo, routing, phys)
            atlas = build_atlas_platform(topo)
            snapshot = collect_snapshot(topo, engine, atlas,
                                        max_pairs=60)
            report = analyze_snapshot(
                topo, snapshot, GeolocationService(topo),
                build_ixp_directory(topo))
            results.append((report.detour_rate(),
                            report.ixp_traversal_rate(),
                            len(ixp_cover_hosts(topo).chosen)))
        assert results[0] == results[1]

    def test_alternate_seed_world_is_sane(self):
        topo = build_world(params=WorldParams(seed=555))
        topo.validate()
        assert len(topo.african_ixps()) == 77
        assert topo.as_(36924).country_iso2 == "RW"
        cover = ixp_cover_hosts(topo)
        assert cover.complete
