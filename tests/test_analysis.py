"""Paper analyses: each figure/table's shape must emerge from the world."""

import pytest

from repro.analysis import (
    analyze_content_locality,
    analyze_correlation,
    analyze_dns_locality,
    analyze_growth,
    analyze_maturity,
    analyze_nautilus,
    analyze_outages,
    analyze_snapshot,
    build_coverage_table,
    regional_coverage,
    split_expected_groups,
)
from repro.datasets import (
    build_delegated_file,
    build_ixp_directory,
    build_radar_feed,
    build_resolver_usage,
    collect_snapshot,
    run_pulse_study,
)
from repro.geo import Region
from repro.measurement import (
    GeolocationService,
    run_ant_hitlist,
    run_caida_prefix_scan,
    run_yarrp_scan,
)
from repro.outages import OutageCause, OutageSimulator


@pytest.fixture(scope="module")
def snapshot(topo, engine, atlas):
    from repro.datasets import collect_snapshot
    return collect_snapshot(topo, engine, atlas, max_pairs=900)


@pytest.fixture(scope="module")
def geo(topo):
    return GeolocationService(topo)


@pytest.fixture(scope="module")
def directory(topo):
    return build_ixp_directory(topo)


@pytest.fixture(scope="module")
def detour_report(topo, snapshot, geo, directory):
    return analyze_snapshot(topo, snapshot, geo, directory)


class TestDetours:
    def test_substantial_detour_rate(self, detour_report):
        """§4.1: a non-trivial share of intra-African routes detours."""
        assert detour_report.detour_rate() > 0.4

    def test_southern_most_local(self, detour_report):
        southern = detour_report.detour_rate(Region.SOUTHERN_AFRICA)
        western = detour_report.detour_rate(Region.WESTERN_AFRICA)
        assert southern < western

    def test_attribution_partial(self, detour_report):
        """§4.1: only ~40% of detours trace to Tier-1/EU-IXP; the rest
        indicate European Tier-2 transit dependence."""
        share = detour_report.attribution_share()
        assert 0.2 < share < 0.7

    def test_ixp_traversal_low(self, detour_report):
        """Fig. 3: only a small share of paths crosses any IXP."""
        assert detour_report.ixp_traversal_rate() < 0.35

    def test_sample_counts_add_up(self, detour_report):
        total = detour_report.sample_count()
        regional = sum(detour_report.sample_count(r)
                       for r in Region if r.is_african)
        assert regional <= total


class TestContentLocality:
    @pytest.fixture(scope="class")
    def report(self, topo):
        return analyze_content_locality(run_pulse_study(topo))

    def test_overall_mostly_remote(self, report):
        """Fig. 2b: only ~30% of content is served from Africa."""
        assert 0.2 < report.overall_africa_share() < 0.45

    def test_southern_most_local(self, report):
        assert report.most_local_region() is Region.SOUTHERN_AFRICA

    def test_western_or_central_least_local(self, report):
        assert report.least_local_region() in (
            Region.WESTERN_AFRICA, Region.CENTRAL_AFRICA,
            Region.NORTHERN_AFRICA)

    def test_all_regions_present(self, report):
        assert {r.region for r in report.rows} == {
            r for r in Region if r.is_african}


class TestDNSLocality:
    @pytest.fixture(scope="class")
    def report(self, topo):
        return analyze_dns_locality(build_resolver_usage(topo))

    def test_substantial_nonlocal_dependence(self, report):
        """Fig. 2c / §5.2: many regions rely on remote resolvers."""
        assert report.african_nonlocal_share() > 0.3

    def test_cloud_from_za(self, report):
        for row in report.rows:
            if row.region.is_african and row.cloud_share > 0:
                assert row.cloud_from_za_share > 0.8

    def test_reference_regions_local(self, report):
        eu = report.row_for(Region.EUROPE)
        assert eu is not None and eu.local_share > 0.7

    def test_southern_more_local_than_central(self, report):
        southern = report.row_for(Region.SOUTHERN_AFRICA)
        central = report.row_for(Region.CENTRAL_AFRICA)
        assert southern.local_share > central.local_share


class TestCoverage:
    @pytest.fixture(scope="class")
    def table(self, topo, routing):
        delegated = build_delegated_file(topo)
        scans = [run_ant_hitlist(topo), run_caida_prefix_scan(topo),
                 run_yarrp_scan(topo, routing)]
        return build_coverage_table(topo, delegated, scans)

    def test_ant_wins_all_dimensions(self, table):
        """Table 1: ANT achieves the highest coverage everywhere."""
        assert table.best_dataset() == "ANT Hitlist"
        ant = table.row_for("ANT Hitlist")
        for other in ("CAIDA Routed /24", "YARRP"):
            row = table.row_for(other)
            assert ant.mobile_coverage > row.mobile_coverage
            assert ant.non_mobile_coverage > row.non_mobile_coverage
            assert ant.ixp_coverage >= row.ixp_coverage

    def test_mobile_exceeds_non_mobile(self, table):
        for row in table.rows:
            assert row.mobile_coverage > row.non_mobile_coverage

    def test_ixp_coverage_is_the_gap(self, table):
        """Table 1's headline: IXP coverage is poor for every scanner."""
        for row in table.rows:
            assert row.ixp_coverage < row.mobile_coverage
            assert row.ixp_coverage < 0.35

    def test_magnitudes_near_paper(self, table):
        ant = table.row_for("ANT Hitlist")
        caida = table.row_for("CAIDA Routed /24")
        assert ant.mobile_coverage == pytest.approx(0.96, abs=0.08)
        assert ant.non_mobile_coverage == pytest.approx(0.714, abs=0.10)
        assert ant.ixp_coverage == pytest.approx(0.235, abs=0.10)
        assert caida.mobile_coverage == pytest.approx(0.644, abs=0.10)

    def test_groups_partition_expected(self, topo):
        delegated = build_delegated_file(topo)
        mobile, non_mobile, ixps = split_expected_groups(topo, delegated)
        assert mobile.isdisjoint(non_mobile)
        assert len(mobile) + len(non_mobile) == len(topo.african_ases())
        assert len(ixps) == 77

    def test_regional_rows(self, topo, routing):
        delegated = build_delegated_file(topo)
        rows = regional_coverage(topo, delegated, run_ant_hitlist(topo))
        assert len(rows) == 5
        for row in rows:
            assert 0.0 <= row.mobile_coverage <= 1.0


class TestNautilus:
    def test_ambiguity_widespread(self, topo, phys, snapshot, geo):
        report = analyze_nautilus(topo, phys, snapshot, geo,
                                  slack_ms=8.0)
        assert report.paths_with_wet_links()
        assert report.multi_cable_share() > 0.4  # §6.2: ">40%"
        assert report.max_candidates() >= 8

    def test_oracle_geolocation_less_ambiguous(self, topo, phys,
                                               snapshot, geo):
        with_errors = analyze_nautilus(topo, phys, snapshot, geo,
                                       slack_ms=8.0)
        oracle = analyze_nautilus(topo, phys, snapshot, None,
                                  slack_ms=8.0)
        assert oracle.mean_candidates() <= \
            with_errors.mean_candidates() + 0.5

    def test_rtt_filter_reduces_candidates(self, topo, phys, snapshot,
                                           geo):
        from repro.analysis import NautilusInference, NautilusReport
        plain = NautilusInference(topo, phys, geo, slack_ms=8.0)
        filtered = NautilusInference(topo, phys, geo, slack_ms=8.0,
                                     rtt_filter=True)
        plain_report, filtered_report = NautilusReport(), NautilusReport()
        for trace in snapshot.traceroutes[:150]:
            plain_report.inferences.append(plain.infer_path(trace))
            filtered_report.inferences.append(filtered.infer_path(trace))
        assert filtered_report.mean_candidates() <= \
            plain_report.mean_candidates()


class TestImpact:
    @pytest.fixture(scope="class")
    def reports(self, topo, phys):
        sim = OutageSimulator(topo, phys).simulate(years=2.0)
        feed = build_radar_feed(sim, seed=topo.params.seed)
        return sim, analyze_outages(sim, feed), analyze_correlation(sim)

    def test_africa_outage_ratio(self, reports):
        _, impact, _ = reports
        assert impact.rate_ratio() > 2.0  # paper: ~4x

    def test_cable_cuts_longest(self, reports):
        _, impact, _ = reports
        assert impact.longest_cause() == OutageCause.SUBSEA_CABLE_CUT.value

    def test_correlation_stats(self, reports):
        _, _, correlation = reports
        assert correlation.cable_events > 0
        assert correlation.multi_cable_share() > 0.2
        if correlation.backup_activations:
            assert 0.0 <= correlation.oversubscription_rate() <= 1.0


class TestGrowth:
    def test_africa_ixp_growth_massive(self, topo):
        africa = analyze_growth(topo).africa()
        assert africa.ixp_growth_pct == pytest.approx(600.0, abs=120.0)

    def test_africa_cable_growth_moderate(self, topo):
        africa = analyze_growth(topo).africa()
        assert 30.0 < africa.cable_growth_pct < 75.0  # paper: +45%

    def test_reference_rows_present(self, topo):
        report = analyze_growth(topo)
        labels = {row.region_label for row in report.rows}
        assert "Europe" in labels and "South America" in labels

    def test_africa_grows_faster_than_europe_relatively(self, topo):
        report = analyze_growth(topo)
        africa = report.africa()
        europe = report.row_for("Europe")
        assert africa.ixp_growth_pct > europe.ixp_growth_pct


class TestMaturity:
    def test_ranking_southern_first(self, topo, detour_report):
        content = analyze_content_locality(run_pulse_study(topo))
        dns = analyze_dns_locality(build_resolver_usage(topo))
        maturity = analyze_maturity(detour_report, content, dns)
        ranking = maturity.ranking()
        assert ranking[0] is Region.SOUTHERN_AFRICA
        # Western is in the bottom half (§4.3: least mature).
        assert ranking.index(Region.WESTERN_AFRICA) >= 2
