"""Policy watchdog, world serialization, and the CLI."""

import json

import pytest

from repro.observatory import (
    DEFAULT_POLICY_PACKAGE,
    Policy,
    PolicyKind,
    PolicyWatchdog,
)
from repro.topology import (
    load_world,
    save_world,
    topology_from_dict,
    topology_to_dict,
)


class TestWatchdog:
    @pytest.fixture(scope="class")
    def watchdog(self, topo, phys):
        return PolicyWatchdog(topo, phys)

    def test_full_continent_assessment(self, watchdog):
        report = watchdog.assess(DEFAULT_POLICY_PACKAGE)
        assert len(report.findings) == 54 * len(DEFAULT_POLICY_PACKAGE)
        assert 0.0 < report.compliance_rate() < 1.0

    def test_violations_listed(self, watchdog):
        report = watchdog.assess(DEFAULT_POLICY_PACKAGE, ["CD", "ZA"])
        assert report.violations()
        cd = report.for_country("CD")
        assert len(cd) == len(DEFAULT_POLICY_PACKAGE)

    def test_mature_markets_more_compliant(self, watchdog):
        report = watchdog.assess(DEFAULT_POLICY_PACKAGE)
        za = [f.compliant for f in report.for_country("ZA")]
        cd = [f.compliant for f in report.for_country("CD")]
        assert sum(za) >= sum(cd)

    def test_diversity_counts_corridors_not_cables(self, topo, watchdog):
        """§5.1: collocated cables must not count as diversity."""
        gh_cables = len(topo.cables_landing_in("GH"))
        gh_diverse = watchdog.diverse_path_count("GH")
        assert gh_diverse < gh_cables

    def test_backup_capacity_metric(self, watchdog):
        survival = watchdog.worst_corridor_survival("GH")
        assert 0.0 <= survival < 0.6  # west corridor dominates Ghana

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            Policy(PolicyKind.DNS_LOCALIZATION, -0.1)

    def test_kind_filter(self, watchdog):
        report = watchdog.assess(DEFAULT_POLICY_PACKAGE, ["GH", "KE"])
        rate = report.compliance_rate(PolicyKind.CABLE_DIVERSITY)
        assert 0.0 <= rate <= 1.0


class TestSerialization:
    def test_roundtrip_equivalence(self, topo, tmp_path):
        path = tmp_path / "world.json"
        save_world(topo, path)
        loaded = load_world(path)
        assert loaded.summary() == topo.summary()
        assert sorted(loaded.ases) == sorted(topo.ases)
        sample = sorted(topo.ases)[::25]
        for asn in sample:
            assert loaded.as_(asn).prefixes == topo.as_(asn).prefixes
            assert loaded.as_(asn).providers == topo.as_(asn).providers
            assert loaded.as_(asn).ixps == topo.as_(asn).ixps
        assert loaded.resolver_configs == topo.resolver_configs
        for cc in ("GH", "KE"):
            assert loaded.websites[cc] == topo.websites[cc]

    def test_gzip_roundtrip(self, topo, tmp_path):
        path = tmp_path / "world.json.gz"
        save_world(topo, path)
        assert load_world(path).summary() == topo.summary()

    def test_dict_is_json_safe(self, topo):
        json.dumps(topology_to_dict(topo))

    def test_loaded_world_is_routable(self, topo, tmp_path):
        from repro.routing import BGPRouting
        path = tmp_path / "world.json"
        save_world(topo, path)
        loaded = load_world(path)
        routing = BGPRouting(loaded)
        asns = sorted(loaded.ases)
        assert routing.path(asns[0], asns[-1]) is not None

    def test_version_check(self, topo):
        data = topology_to_dict(topo)
        data["format_version"] = 999
        with pytest.raises(ValueError):
            topology_from_dict(data)

    def test_footprints_survive(self, topo, tmp_path):
        path = tmp_path / "world.json"
        save_world(topo, path)
        loaded = load_world(path)
        assert getattr(loaded.as_(30844), "footprint", None) == \
            getattr(topo.as_(30844), "footprint", None)


class TestCLI:
    def test_summary(self, capsys):
        from repro.cli import main
        assert main(["summary"]) == 0
        out = capsys.readouterr().out
        assert "ases_african" in out

    def test_placement(self, capsys):
        from repro.cli import main
        assert main(["placement", "--budget", "3"]) == 0
        out = capsys.readouterr().out
        assert "AS" in out and "IXPs covered" in out

    def test_watchdog(self, capsys):
        from repro.cli import main
        assert main(["watchdog", "--countries", "GH"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out or "FAIL" in out

    def test_save_and_load(self, tmp_path, capsys):
        from repro.cli import main
        path = str(tmp_path / "w.json.gz")
        assert main(["save", path]) == 0
        assert main(["load-check", path]) == 0
        assert "ases_total" in capsys.readouterr().out

    def test_cablecut(self, capsys):
        from repro.cli import main
        assert main(["cablecut", "--scenario", "west"]) == 0
        assert "WACS" in capsys.readouterr().out

    def test_fleet(self, capsys):
        from repro.cli import main
        assert main(["fleet", "--objective", "country"]) == 0
        out = capsys.readouterr().out
        assert "Fleet economics" in out and "/year" in out

    def test_unknown_command_rejected(self):
        from repro.cli import main
        with pytest.raises(SystemExit):
            main(["not-a-command"])
