"""Shared fixtures: one default world per test session.

Building the world and its routing state takes a couple of seconds, so
everything read-only shares session-scoped fixtures.  Tests that mutate
a topology must build (or deep-copy) their own.
"""

from __future__ import annotations

import pytest

from repro import build_world
from repro.measurement import MeasurementEngine, build_atlas_platform
from repro.routing import BGPRouting, PhysicalNetwork

DEFAULT_SEED = 2025


@pytest.fixture(scope="session")
def topo():
    return build_world(seed=DEFAULT_SEED)


@pytest.fixture(scope="session")
def routing(topo):
    return BGPRouting(topo)


@pytest.fixture(scope="session")
def phys(topo):
    return PhysicalNetwork(topo)


@pytest.fixture(scope="session")
def engine(topo, routing, phys):
    return MeasurementEngine(topo, routing, phys)


@pytest.fixture(scope="session")
def atlas(topo):
    return build_atlas_platform(topo)
