"""World-generator invariants: the structure §2 describes must hold."""

import pytest

from repro import build_world, WorldParams
from repro.geo import AFRICAN_COUNTRIES, Region
from repro.topology import ASKind, IXPOwner, Relationship


class TestStructure:
    def test_validates(self, topo):
        topo.validate()

    def test_77_african_ixps(self, topo):
        assert len(topo.african_ixps()) == 77

    def test_no_african_tier1(self, topo):
        assert all(not a.is_african for a in topo.tier1_ases())

    def test_every_african_country_has_ases(self, topo):
        covered = {a.country_iso2 for a in topo.african_ases()}
        assert covered == set(AFRICAN_COUNTRIES)

    def test_mobile_majority_in_africa(self, topo):
        eyeballs = [a for a in topo.african_ases() if a.kind.is_eyeball]
        mobile = sum(a.kind is ASKind.MOBILE for a in eyeballs)
        assert mobile / len(eyeballs) > 0.6

    def test_kigali_vantage_wired(self, topo):
        gva = topo.as_(36924)
        assert gva.country_iso2 == "RW"
        # Regional transit providers, peering at RINEX (§7.3).
        assert 30844 in gva.providers and 37662 in gva.providers
        assert any(topo.ixps[i].name == "RINEX" for i in gva.ixps)

    def test_every_stub_has_a_provider(self, topo):
        for a in topo.ases.values():
            if a.tier == 3 and a.kind is not ASKind.CONTENT:
                assert a.providers, f"{a.name} is provider-less"

    def test_every_ixp_has_members(self, topo):
        for ixp in topo.african_ixps():
            assert len(ixp.members) >= 2, ixp.name

    def test_membership_mirrored(self, topo):
        for ixp in topo.ixps.values():
            for member in ixp.members:
                assert ixp.ixp_id in topo.as_(member).ixps

    def test_relationships_mirrored(self, topo):
        for link in topo.links:
            if link.rel is Relationship.PROVIDER_TO_CUSTOMER:
                assert link.b in topo.as_(link.a).customers
                assert link.a in topo.as_(link.b).providers
            else:
                assert link.b in topo.as_(link.a).peers

    def test_flagship_ixps_exist(self, topo):
        names = {x.name for x in topo.african_ixps()}
        for flagship in ("NAPAfrica", "KIXP", "IXPN", "KINIX", "RINEX"):
            assert flagship in names


class TestAddressing:
    def test_every_as_has_prefixes(self, topo):
        assert all(a.prefixes for a in topo.ases.values())

    def test_prefix_registry_consistent(self, topo):
        for a in list(topo.ases.values())[:50]:
            for prefix in a.prefixes:
                assert topo.prefix_registry.lookup(prefix.network) == a.asn

    def test_african_space_in_afrinic_pools(self, topo):
        afrinic_first_octets = {41, 102, 105, 154, 197}
        for a in topo.african_ases()[:80]:
            for prefix in a.prefixes:
                assert (prefix.network >> 24) in afrinic_first_octets

    def test_ixp_lans_resolvable(self, topo):
        for ixp in topo.ixps.values():
            owner = topo.owner_of_ip(ixp.lan_prefix.network + 1)
            assert isinstance(owner, IXPOwner)
            assert owner.ixp_id == ixp.ixp_id

    def test_ixp_lans_not_in_as_space(self, topo):
        for ixp in list(topo.ixps.values())[:20]:
            assert topo.as_for_ip(ixp.lan_prefix.network + 1) is None


class TestDeterminism:
    def test_same_seed_same_world(self):
        a = build_world(seed=777 if False else 99)
        b = build_world(params=WorldParams(seed=99))
        assert a.summary() == b.summary()
        assert sorted(a.ases) == sorted(b.ases)
        for asn in list(a.ases)[:40]:
            assert a.as_(asn).prefixes == b.as_(asn).prefixes
            assert a.as_(asn).providers == b.as_(asn).providers

    def test_different_seed_differs(self, topo):
        other = build_world(params=WorldParams(seed=4242))
        same_links = sum(
            1 for l in topo.links[:200]
            if other.link_between(l.a, l.b) is not None)
        assert same_links < 200  # relationships reshuffle

    def test_seed_param_conflict_rejected(self):
        with pytest.raises(ValueError):
            build_world(seed=3, params=WorldParams(seed=4))


class TestResolverEcosystem:
    def test_all_eyeballs_have_resolver_config(self, topo):
        for a in topo.african_ases():
            if a.kind.is_eyeball:
                assert a.asn in topo.resolver_configs

    def test_resolver_hosts_valid(self, topo):
        from repro.geo import country
        for cfg in topo.resolver_configs.values():
            country(cfg.hosted_in)

    def test_cloud_resolvers_anchor_on_za(self, topo):
        from repro.topology import ResolverLocality
        cloud = [c for c in topo.resolver_configs.values()
                 if c.locality is ResolverLocality.CLOUD
                 and topo.as_(c.asn).is_african]
        assert cloud
        za_share = sum(c.hosted_in == "ZA" for c in cloud) / len(cloud)
        assert za_share > 0.9  # §5.2: "centralized in South Africa"


class TestContent:
    def test_every_african_country_has_top_sites(self, topo):
        for iso2 in AFRICAN_COUNTRIES:
            sites = topo.websites[iso2]
            assert len(sites) == topo.params.top_sites_per_country
            assert [s.rank for s in sites] == list(
                range(1, len(sites) + 1))

    def test_cdn_share_close_to_param(self, topo):
        all_sites = [s for sites in topo.websites.values() for s in sites]
        share = sum(s.uses_cdn for s in all_sites) / len(all_sites)
        assert abs(share - topo.params.cdn_top_site_share) < 0.05

    def test_server_asn_known(self, topo):
        for sites in topo.websites.values():
            for s in sites[:10]:
                assert s.server_asn in topo.ases
