"""Observatory campaigns and what-if scenarios."""

import pytest

from repro.datasets import build_ixp_directory
from repro.observatory import (
    CableDisambiguationCampaign,
    DNSDependencyCampaign,
    IXPDiscoveryCampaign,
    WhatIfAddCable,
    WhatIfCutCables,
    WhatIfLocalizeDNS,
    WhatIfMandateLocalPeering,
    WhatIfOutcome,
    kigali_comparison,
)
from repro.outages import march_2024_scenario


@pytest.fixture(scope="module")
def complete_directory(topo):
    return build_ixp_directory(topo, complete=True)


@pytest.fixture(scope="module")
def west_cut(topo):
    west, _ = march_2024_scenario(topo)
    return west


class TestKigali:
    def test_targeted_vantage_beats_atlas(self, topo, engine,
                                          complete_directory, atlas):
        obs, ref = kigali_comparison(topo, engine, complete_directory,
                                     atlas)
        assert obs.detected_count() > ref.detected_count()
        # §7.3 reports 14 additional IXPs; the shape requirement is a
        # clearly positive gap.
        assert obs.detected_count() - ref.detected_count() >= 3

    def test_detected_are_african(self, topo, engine,
                                  complete_directory, atlas):
        obs, _ = kigali_comparison(topo, engine, complete_directory,
                                   atlas)
        for ixp_id in obs.detected_ixp_ids:
            assert topo.ixps[ixp_id].is_african

    def test_campaign_counts_traceroutes(self, topo, engine,
                                         complete_directory, atlas):
        campaign = IXPDiscoveryCampaign(topo, engine, complete_directory)
        result = campaign.run(atlas.probes[:1], "one-probe")
        assert result.traceroutes > 50


class TestDNSDependency:
    def test_cut_amplifies_failures(self, topo, phys, west_cut):
        campaign = DNSDependencyCampaign(topo, phys)
        rows = campaign.run(["GH", "CI"], west_cut)
        assert rows
        for row in rows:
            assert row.cable_cut_failure_rate >= \
                row.baseline_failure_rate
        assert any(r.cable_cut_failure_rate > r.baseline_failure_rate
                   for r in rows)

    def test_unaffected_country_stable(self, topo, phys, west_cut):
        campaign = DNSDependencyCampaign(topo, phys)
        row = campaign.run(["KE"], west_cut)[0]
        assert row.cable_cut_failure_rate <= \
            row.baseline_failure_rate + 0.05

    def test_nonlocal_share_bounds(self, topo, phys, west_cut):
        campaign = DNSDependencyCampaign(topo, phys)
        for row in campaign.run(["NG", "ZA"], west_cut):
            assert 0.0 <= row.nonlocal_share <= 1.0


class TestDisambiguation:
    def test_active_measurement_identifies_cable(self, topo, phys):
        campaign = CableDisambiguationCampaign(topo, phys)
        candidates = phys.candidate_cables("GH", "PT", slack_ms=8.0)
        assert len(candidates) >= 1
        result = campaign.disambiguate("GH", "PT", candidates)
        assert result.identified_cable_id is not None
        assert result.correct

    def test_no_cable_pair(self, topo, phys):
        campaign = CableDisambiguationCampaign(topo, phys)
        result = campaign.disambiguate("KE", "UG", set())
        assert result.identified_cable_id is None


class TestWhatIfCable:
    def test_diverse_cable_reduces_cut_severity(self, topo, west_cut):
        scenario = WhatIfAddCable(topo)
        modified = scenario.apply("Hypothetical-Diverse",
                                  ("GH", "BR"), capacity_tbps=80.0)
        outcome = scenario.cut_severity("GH", west_cut, modified)
        assert outcome.modified < outcome.baseline
        assert outcome.delta < 0

    def test_baseline_topology_untouched(self, topo, west_cut):
        n_cables = len(topo.cables)
        scenario = WhatIfAddCable(topo)
        scenario.apply("X", ("GH", "BR"))
        assert len(topo.cables) == n_cables


class TestWhatIfDNS:
    def test_localization_reduces_outage_failures(self, topo, west_cut):
        scenario = WhatIfLocalizeDNS(topo)
        modified = scenario.apply("GH", localized_share=1.0)
        outcome = scenario.outage_resolution_failure(
            "GH", west_cut, modified, domains=3)
        assert outcome.modified <= outcome.baseline

    def test_share_validation(self, topo):
        with pytest.raises(ValueError):
            WhatIfLocalizeDNS(topo).apply("GH", localized_share=1.5)

    def test_partial_share_moves_fewer(self, topo):
        scenario = WhatIfLocalizeDNS(topo)
        full = scenario.apply("NG", 1.0)
        half = scenario.apply("NG", 0.5)

        def nonlocal_count(t):
            return sum(
                1 for asn, cfg in t.resolver_configs.items()
                if t.as_(asn).country_iso2 == "NG"
                and not cfg.locality.survives_cable_cut)
        assert nonlocal_count(full) <= nonlocal_count(half) \
            <= nonlocal_count(topo)


class TestWhatIfPeering:
    def test_mandate_reduces_domestic_detours(self, topo):
        scenario = WhatIfMandateLocalPeering(topo)
        modified = scenario.apply("NG")
        outcome = scenario.domestic_detour_rate("NG", modified)
        assert outcome.modified <= outcome.baseline
        assert outcome.modified < 0.2  # full local mesh localizes

    def test_requires_an_ixp(self, topo):
        with pytest.raises(ValueError):
            WhatIfMandateLocalPeering(topo).apply("SS")


class TestWhatIfCut:
    def test_severities(self, topo, west_cut):
        scenario = WhatIfCutCables(topo)
        severities = scenario.country_severities(west_cut)
        assert severities.get("GH", 0) > 0.2
        assert severities.get("KE", 0) < 0.05

    def test_rtt_inflation(self, topo, west_cut):
        scenario = WhatIfCutCables(topo)
        outcome = scenario.rtt_inflation("GH", "PT", west_cut)
        assert outcome.modified >= outcome.baseline

    def test_outcome_helpers(self):
        outcome = WhatIfOutcome("m", baseline=2.0, modified=1.0)
        assert outcome.delta == -1.0
        assert outcome.relative_change == -0.5
        zero = WhatIfOutcome("m", 0.0, 0.0)
        assert zero.relative_change == 0.0
