"""repro.store: keys, content addressing, LRU eviction, integrity."""

from __future__ import annotations

import json
import os

import pytest

from repro.store import (
    ArtifactKey,
    ArtifactStore,
    canonical_bytes,
    digest_bytes,
    digest_obj,
)


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(root=tmp_path / "store", max_bytes=10_000)


def _key(**params) -> ArtifactKey:
    return ArtifactKey.make("api.test", 2025, params, schema_version=1)


# ----------------------------------------------------------------------
class TestKeys:
    def test_digest_stable_across_param_order(self):
        a = ArtifactKey.make("k", 1, {"x": 1, "y": 2})
        b = ArtifactKey.make("k", 1, {"y": 2, "x": 1})
        assert a == b and a.digest == b.digest

    def test_digest_distinguishes_every_field(self):
        base = ArtifactKey.make("k", 1, {"x": 1}, schema_version=1)
        assert base.digest != ArtifactKey.make(
            "k2", 1, {"x": 1}, schema_version=1).digest
        assert base.digest != ArtifactKey.make(
            "k", 2, {"x": 1}, schema_version=1).digest
        assert base.digest != ArtifactKey.make(
            "k", 1, {"x": 2}, schema_version=1).digest
        assert base.digest != ArtifactKey.make(
            "k", 1, {"x": 1}, schema_version=2).digest

    def test_canonical_bytes_is_order_independent(self):
        assert canonical_bytes({"b": 1, "a": [1, 2]}) == \
            canonical_bytes({"a": [1, 2], "b": 1})

    def test_canonical_bytes_rejects_nan(self):
        with pytest.raises(ValueError):
            canonical_bytes({"x": float("nan")})

    def test_digest_obj_matches_manual_hash(self):
        obj = {"a": 1}
        assert digest_obj(obj) == digest_bytes(canonical_bytes(obj))


# ----------------------------------------------------------------------
class TestStoreRoundTrip:
    def test_get_miss_then_put_then_hit(self, store):
        key = _key(x=1)
        assert store.get(key) is None
        store.put(key, b'{"v":1}')
        assert store.get(key) == b'{"v":1}'
        assert store.hits == 1 and store.misses == 1

    def test_put_is_idempotent_overwrite(self, store):
        key = _key(x=1)
        store.put(key, b"one")
        store.put(key, b"two")
        assert store.get(key) == b"two"
        assert len(store.entries()) == 1

    def test_get_or_build_builds_once(self, store):
        key = _key(x=3)
        calls = []

        def build() -> bytes:
            calls.append(1)
            return b"payload"

        p1, hit1 = store.get_or_build(key, build)
        p2, hit2 = store.get_or_build(key, build)
        assert (p1, hit1) == (b"payload", False)
        assert (p2, hit2) == (b"payload", True)
        assert len(calls) == 1

    def test_payload_must_be_bytes(self, store):
        with pytest.raises(TypeError):
            store.put(_key(), {"not": "bytes"})

    def test_entries_expose_key_fields(self, store):
        store.put(_key(pairs=600), b"x" * 10)
        (entry,) = store.entries()
        assert entry.kind == "api.test"
        assert entry.seed == 2025
        assert entry.params == {"pairs": 600}
        assert entry.size_bytes == 10
        assert entry.content_digest == digest_bytes(b"x" * 10)

    def test_stats(self, store):
        store.put(_key(x=1), b"abc")
        store.get(_key(x=1))
        store.get(_key(x=2))
        stats = store.stats()
        assert stats["entries"] == 1
        assert stats["total_bytes"] == 3
        assert stats["hits"] == 1 and stats["misses"] == 1


# ----------------------------------------------------------------------
class TestIntegrity:
    def test_corrupted_payload_is_a_miss_and_dropped(self, store):
        key = _key(x=1)
        store.put(key, b"good bytes")
        payload_path = store._payload_path(key.digest)
        payload_path.write_bytes(b"evil bytes")
        assert store.get(key) is None
        assert not payload_path.exists()  # quarantined
        # The next write repopulates cleanly.
        store.put(key, b"good bytes")
        assert store.get(key) == b"good bytes"

    def test_verify_reports_mismatch_without_deleting(self, store):
        key = _key(x=1)
        store.put(key, b"good")
        store._payload_path(key.digest).write_bytes(b"bad!")
        problems = store.verify()
        assert [p.reason for p in problems] == ["content digest mismatch"]
        assert problems[0].key_digest == key.digest

    def test_verify_reports_orphan_payload(self, store):
        key = _key(x=2)
        store.put(key, b"data")
        store._meta_path(key.digest).unlink()
        reasons = {p.reason for p in store.verify()}
        assert "orphan payload" in reasons

    def test_verify_clean_store(self, store):
        store.put(_key(x=1), b"a")
        store.put(_key(x=2), b"b")
        assert store.verify() == []


# ----------------------------------------------------------------------
class TestEviction:
    def test_put_evicts_lru_over_cap(self, tmp_path):
        store = ArtifactStore(root=tmp_path, max_bytes=250)
        keys = [_key(i=i) for i in range(4)]
        for age, key in enumerate(keys):
            store.put(key, b"x" * 100)
            # Well-separated mtimes make LRU order unambiguous.
            path = store._payload_path(key.digest)
            os.utime(path, (1_000_000 + age, 1_000_000 + age))
        # Cap is 250 → only the two most recent survive.
        store.gc()
        assert store.get(keys[0]) is None
        assert store.get(keys[1]) is None
        assert store.get(keys[2]) is not None
        assert store.get(keys[3]) is not None

    def test_read_refreshes_recency(self, tmp_path):
        store = ArtifactStore(root=tmp_path, max_bytes=1_000)
        old, new = _key(i=0), _key(i=1)
        store.put(old, b"x" * 100)
        store.put(new, b"y" * 100)
        for i, key in enumerate((old, new)):
            os.utime(store._payload_path(key.digest),
                     (1_000_000 + i, 1_000_000 + i))
        assert store.get(old) is not None  # bumps old's mtime to now
        evicted = store.gc(max_bytes=150)
        assert [e.params for e in evicted] == [{"i": 1}]
        assert store.get(old) is not None

    def test_gc_returns_evicted_entries(self, tmp_path):
        store = ArtifactStore(root=tmp_path, max_bytes=10_000)
        store.put(_key(i=0), b"z" * 50)
        evicted = store.gc(max_bytes=0)
        assert len(evicted) == 1
        assert store.entries() == []

    def test_clear(self, store):
        store.put(_key(i=0), b"a")
        store.put(_key(i=1), b"b")
        store.clear()
        assert store.entries() == []
        assert store.total_bytes() == 0


# ----------------------------------------------------------------------
class TestAtomicity:
    def test_no_partial_files_outside_tmp(self, store):
        for i in range(5):
            store.put(_key(i=i), json.dumps({"i": i}).encode())
        # Staging dir drains; objects hold exactly payload+meta pairs.
        assert list((store.root / "tmp").iterdir()) == []
        bins = list(store.root.glob("objects/*/*.bin"))
        metas = list(store.root.glob("objects/*/*.meta.json"))
        assert len(bins) == len(metas) == 5

    def test_meta_records_the_key(self, store):
        key = _key(years=2.0)
        store.put(key, b"payload")
        meta = json.loads(store._meta_path(key.digest).read_bytes())
        assert meta["key"] == key.to_dict()
        assert meta["key_digest"] == key.digest


# ----------------------------------------------------------------------
class TestWorldDigest:
    def test_save_load_round_trip_digest_is_stable(self, topo, tmp_path):
        from repro.topology import load_world, save_world, world_digest
        d1 = world_digest(topo)
        path = tmp_path / "world.json.gz"
        save_world(topo, path)
        d2 = world_digest(load_world(path))
        assert d1 == d2
        assert len(d1) == 64 and int(d1, 16) >= 0

    def test_digest_detects_content_drift(self, topo):
        from repro.topology import (CableCorridor, Landing, SubseaCable,
                                    world_digest)
        drifted = topo.structured_copy()
        drifted.cables.append(SubseaCable(
            cable_id=max(c.cable_id for c in topo.cables) + 1,
            name="Drift-1", corridor=CableCorridor.SOUTH_ATLANTIC,
            landings=[Landing("GH", "Accra", 5.56, -0.2),
                      Landing("BR", "Fortaleza", -3.7, -38.5)],
            rfs_year=2020, capacity_tbps=30.0, diverse_route=True))
        assert world_digest(drifted) != world_digest(topo)

    def test_cli_save_and_load_report_same_digest(self, tmp_path,
                                                  capsys):
        from repro.cli import main
        path = str(tmp_path / "w.json")
        assert main(["save", path]) == 0
        save_out = capsys.readouterr().out
        assert main(["load-check", path]) == 0
        load_out = capsys.readouterr().out
        digest_save = [l for l in save_out.splitlines()
                       if l.startswith("content digest: ")]
        digest_load = [l for l in load_out.splitlines()
                       if l.startswith("content digest: ")]
        assert digest_save and digest_save == digest_load
