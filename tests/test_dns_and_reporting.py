"""DNS measurement semantics, reporting helpers, RNG derivation."""

import pytest

from repro.measurement import DNSMeasurement
from repro.outages import march_2024_scenario
from repro.reporting import ascii_table, bar_chart, pct, series
from repro.topology import ResolverLocality
from repro.util import derive_rng, derive_seed


class TestDNS:
    @pytest.fixture(scope="class")
    def dns(self, topo, phys):
        return DNSMeasurement(topo, phys)

    def _clients(self, topo, iso2):
        return [a.asn for a in topo.ases_in_country(iso2)
                if a.asn in topo.resolver_configs]

    def test_baseline_mostly_succeeds(self, topo, dns):
        ok = total = 0
        for asn in self._clients(topo, "GH") + self._clients(topo, "KE"):
            for i in range(4):
                result = dns.resolve(asn, f"d{i}.example")
                total += 1
                ok += result.ok
        assert ok / total > 0.9

    def test_result_fields(self, topo, dns):
        asn = self._clients(topo, "ZA")[0]
        result = dns.resolve(asn, "example.org")
        assert result.client_asn == asn
        assert isinstance(result.locality, ResolverLocality)
        if result.ok:
            assert result.rtt_ms > 0
        else:
            assert result.failure_reason

    def test_cut_degrades_affected_country(self, topo, dns):
        west, _ = march_2024_scenario(topo)
        fails = {False: 0, True: 0}
        total = 0
        for asn in self._clients(topo, "GH"):
            for i in range(6):
                total += 1
                fails[False] += not dns.resolve(asn, f"x{i}.test").ok
                fails[True] += not dns.resolve(
                    asn, f"x{i}.test", down_cables=west).ok
        assert fails[True] > fails[False]

    def test_unknown_client_rejected(self, dns):
        with pytest.raises(KeyError):
            dns.resolve(1, "example.org")

    def test_local_resolver_survives_total_cut(self, topo, phys):
        """§5.2's takeaway in reverse: in-country resolution plus cache
        still works when all cables are gone."""
        dns = DNSMeasurement(topo, phys, cache_hit_rate=1.0)
        all_cables = [c.cable_id for c in topo.cables]
        local_clients = [
            asn for asn, cfg in topo.resolver_configs.items()
            if cfg.locality.survives_cable_cut
            and topo.as_(asn).country_iso2 == "ZA"]
        assert local_clients
        ok = sum(dns.resolve(a, "local.site", down_cables=all_cables).ok
                 for a in local_clients[:10])
        assert ok >= 8  # cached, in-country: survives


class TestReporting:
    def test_ascii_table(self):
        text = ascii_table(["name", "value"],
                           [["alpha", 1], ["beta", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "alpha" in text and "22" in text
        assert set(lines[2]) <= {"-", "+"}

    def test_pct(self):
        assert pct(0.235) == "23.5%"
        assert pct(1.0, digits=0) == "100%"

    def test_series(self):
        out = series("s", [("a", 1.0), ("b", 2.5)])
        assert out == "s: a=1.00  b=2.50"

    def test_bar_chart(self):
        out = bar_chart([("x", 1.0), ("yy", 0.5)], width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5
        assert bar_chart([], title="empty") == "empty"


class TestRNG:
    def test_deterministic(self):
        assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")
        assert derive_rng(1, "x").random() == derive_rng(1, "x").random()

    def test_path_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")
        assert derive_seed(1, "a", "b") != derive_seed(1, "ab")
