"""Synthetic dataset feeds: schemas and consistency with ground truth."""

import pytest

from repro.datasets import (
    REFERENCE_GROWTH,
    build_delegated_file,
    build_ixp_directory,
    build_radar_feed,
    build_resolver_usage,
    collect_snapshot,
    expected_asns,
    growth_pct,
    membership_map,
    parse_delegated_file,
    probe_target_ip,
    render_delegated_file,
    run_pulse_study,
)
from repro.geo import country
from repro.outages import OutageSimulator
from repro.topology import ResolverLocality


@pytest.fixture(scope="module")
def simulation(topo, phys):
    return OutageSimulator(topo, phys).simulate(years=1.0)


class TestRadar:
    def test_entries_reference_real_events(self, simulation):
        feed = build_radar_feed(simulation, seed=1)
        ids = {e.event_id for e in simulation.events}
        assert feed
        for entry in feed:
            assert entry.event_id in ids
            assert entry.duration_days >= 0
            assert 0 < entry.traffic_drop <= 1.0
            country(entry.location)

    def test_subthreshold_impacts_invisible(self, simulation):
        feed = build_radar_feed(simulation, seed=1, threshold=0.25)
        by_event = {e.event_id: e for e in simulation.events}
        for entry in feed:
            impact = by_event[entry.event_id].impact_for(entry.location)
            assert impact.severity >= 0.25

    def test_some_entries_unverified(self, simulation):
        feed = build_radar_feed(simulation, seed=1)
        assert any(e.verified_cause is None for e in feed)
        assert any(e.verified_cause is not None for e in feed)


class TestAfrinic:
    def test_roundtrip(self, topo):
        text = render_delegated_file(topo)
        records = parse_delegated_file(text)
        assert records == build_delegated_file(topo)

    def test_expected_asns_match_world(self, topo):
        records = build_delegated_file(topo)
        assert expected_asns(records) == \
            {a.asn for a in topo.african_ases()}

    def test_only_african_delegations(self, topo):
        for record in build_delegated_file(topo):
            assert country(record.cc).is_african


class TestPulse:
    def test_covers_every_country(self, topo):
        study = run_pulse_study(topo)
        assert study.countries() == set(
            cc for cc in topo.websites)
        per_country = len(study.for_country("GH"))
        assert per_country == topo.params.top_sites_per_country

    def test_cdn_detection_imperfect(self, topo):
        study = run_pulse_study(topo)
        truth = {(s.client_country, s.domain): s.uses_cdn
                 for sites in topo.websites.values() for s in sites}
        mismatches = sum(
            1 for s in study.samples
            if s.cdn_detected != truth[(s.client_country, s.domain)])
        assert 0 < mismatches < len(study.samples) * 0.2


class TestAPNIC:
    def test_shares_sum_to_one(self, topo):
        for record in build_resolver_usage(topo):
            assert sum(record.shares.values()) == pytest.approx(1.0)
            assert record.samples > 0

    def test_cloud_centralized_in_za(self, topo):
        records = [r for r in build_resolver_usage(topo)
                   if r.region.is_african
                   and r.shares.get(ResolverLocality.CLOUD, 0) > 0]
        assert records
        mean = sum(r.cloud_share_from_za for r in records) / len(records)
        assert mean > 0.9


class TestPeeringDB:
    def test_incomplete_by_default(self, topo):
        directory = build_ixp_directory(topo)
        complete = build_ixp_directory(topo, complete=True)
        assert len(directory) < len(complete)
        assert len(complete) == len(topo.ixps)

    def test_flagships_always_listed(self, topo):
        names = {e.name for e in build_ixp_directory(topo).entries}
        assert {"NAPAfrica", "KIXP", "IXPN"} <= names

    def test_northern_africa_underrepresented(self, topo):
        directory = build_ixp_directory(topo)
        northern_ccs = {"EG", "DZ", "MA", "TN", "LY", "SD"}
        northern_total = sum(1 for x in topo.african_ixps()
                             if x.country_iso2 in northern_ccs)
        northern_listed = sum(1 for e in directory.entries
                              if e.country_iso2 in northern_ccs)
        assert northern_listed <= northern_total / 2 + 1

    def test_membership_map_only_listed(self, topo):
        directory = build_ixp_directory(topo)
        mapping = membership_map(topo, directory)
        listed = directory.ixp_ids()
        for ixps in mapping.values():
            assert ixps <= listed


class TestAtlasSnapshot:
    def test_intra_african_indices(self, topo, engine, atlas):
        snapshot = collect_snapshot(topo, engine, atlas, max_pairs=40)
        for idx in snapshot.intra_african(topo):
            src, dst = snapshot.pairs[idx]
            assert src.region.is_african and dst.region.is_african

    def test_max_pairs_respected(self, topo, engine, atlas):
        snapshot = collect_snapshot(topo, engine, atlas, max_pairs=25)
        assert len(snapshot) == 25

    def test_probe_target_in_probe_as(self, topo, atlas):
        probe = atlas.probes[0]
        ip = probe_target_ip(topo, probe)
        assert topo.as_for_ip(ip).asn == probe.asn


class TestReferenceGrowth:
    def test_growth_pct(self):
        assert growth_pct(10, 15) == pytest.approx(50.0)
        assert growth_pct(0, 10) == 0.0

    def test_reference_regions_grow(self):
        for region, (before, after) in REFERENCE_GROWTH.items():
            assert after.ixps >= before.ixps
            assert after.asns >= before.asns
