"""Outage engine: correlated cuts, recovery, event process."""

import random

import pytest

from repro.geo import country
from repro.outages import (
    CountryImpact,
    OutageCause,
    OutageEvent,
    OutageSimulator,
    PREARRANGED_BACKUP_RATE,
    RecoveryModel,
    cables_in_corridor,
    draw_corridor_incident,
    expected_joint_failures,
    march_2024_scenario,
)
from repro.outages.engine import _poisson
from repro.topology import CableCorridor


@pytest.fixture(scope="module")
def simulation(topo, phys):
    return OutageSimulator(topo, phys).simulate(years=2.0)


class TestEvents:
    def test_impact_validation(self):
        with pytest.raises(ValueError):
            CountryImpact("GH", 1.5, 1.0)
        with pytest.raises(ValueError):
            CountryImpact("GH", 0.5, -1.0)

    def test_event_helpers(self):
        event = OutageEvent(
            event_id=1, cause=OutageCause.POWER_OUTAGE, start_day=0.0,
            repair_days=1.0,
            impacts=[CountryImpact("GH", 0.5, 1.0),
                     CountryImpact("NG", 0.8, 2.0)])
        assert event.max_severity() == 0.8
        assert event.longest_outage_days() == 2.0
        assert event.affected_countries == ["GH", "NG"]
        assert event.impact_for("GH").severity == 0.5
        assert event.impact_for("KE") is None


class TestCorrelation:
    def test_west_corridor_is_crowded(self, topo):
        cables = cables_in_corridor(topo, CableCorridor.WEST_AFRICA)
        assert len(cables) >= 8

    def test_incident_localized_to_chokepoint(self, topo):
        rng = random.Random(5)
        for _ in range(20):
            incident = draw_corridor_incident(
                topo, CableCorridor.WEST_AFRICA, rng, cut_prob=0.72)
            if incident is None:
                continue
            for cable_id in incident.cut_cable_ids:
                cable = next(c for c in topo.cables
                             if c.cable_id == cable_id)
                assert incident.chokepoint in cable.countries

    def test_diverse_cables_mostly_spared(self, topo):
        rng = random.Random(9)
        diverse = {c.cable_id for c in topo.cables if c.diverse_route}
        diverse_cut = legacy_cut = 0
        for _ in range(300):
            incident = draw_corridor_incident(
                topo, CableCorridor.WEST_AFRICA, rng, cut_prob=0.72)
            if incident is None:
                continue
            for cid in incident.cut_cable_ids:
                if cid in diverse:
                    diverse_cut += 1
                else:
                    legacy_cut += 1
        assert legacy_cut > diverse_cut * 3

    def test_expected_joint_failures_multi(self, topo):
        expected = expected_joint_failures(
            topo, CableCorridor.WEST_AFRICA, 0.72)
        assert expected > 1.0  # correlation: one event, multiple cables


class TestRecovery:
    def test_prearranged_is_deterministic_per_country(self):
        model = RecoveryModel(seed=1)
        assert model.has_prearranged_backup("KE") == \
            model.has_prearranged_backup("KE")

    def test_backup_shortens_outage(self):
        model = RecoveryModel(seed=1)
        rng = random.Random(2)
        with_backup = []
        without = []
        for _ in range(300):
            outcome = model.recover("ZA", 0.8, repair_days=20.0,
                                    correlated=False, rng=rng)
            if outcome.backup_activated and \
                    not outcome.backup_oversubscribed:
                with_backup.append(outcome.restore_days)
            elif not outcome.backup_prearranged:
                without.append(outcome.restore_days)
        if with_backup and without:
            avg = lambda xs: sum(xs) / len(xs)
            assert avg(with_backup) < avg(without)

    def test_correlated_events_oversubscribe_backups(self):
        model = RecoveryModel(seed=1)
        rng = random.Random(3)
        rates = {}
        for correlated in (True, False):
            oversub = activated = 0
            for _ in range(500):
                outcome = model.recover("KE", 0.7, 15.0, correlated, rng)
                if outcome.backup_activated:
                    activated += 1
                    oversub += outcome.backup_oversubscribed
            rates[correlated] = oversub / max(1, activated)
        assert rates[True] > rates[False]

    def test_region_gradient(self):
        from repro.geo import Region
        assert PREARRANGED_BACKUP_RATE[Region.SOUTHERN_AFRICA] > \
            PREARRANGED_BACKUP_RATE[Region.CENTRAL_AFRICA]


class TestSimulation:
    def test_poisson_sane(self):
        rng = random.Random(4)
        assert _poisson(rng, 0.0) == 0
        draws = [_poisson(rng, 3.0) for _ in range(2000)]
        mean = sum(draws) / len(draws)
        assert 2.6 < mean < 3.4

    def test_events_sorted_by_time(self, simulation):
        days = [e.start_day for e in simulation.events]
        assert days == sorted(days)

    def test_cable_events_have_cables(self, simulation):
        for event in simulation.by_cause(OutageCause.SUBSEA_CABLE_CUT):
            assert event.cables_cut
            assert event.impacts

    def test_africa_dominates_outages(self, simulation):
        detected = simulation.detected()
        african = sum(1 for e in detected for i in e.impacts
                      if country(i.iso2).is_african)
        other = sum(1 for e in detected for i in e.impacts
                    if not country(i.iso2).is_african)
        assert african > other * 2

    def test_cable_cuts_hit_many_countries(self, simulation):
        hit = simulation.countries_hit_by_cable_cuts()
        assert 10 <= len(hit) <= 54
        assert all(country(cc).is_african for cc in hit)

    def test_cable_cuts_last_longest(self, simulation):
        import statistics
        medians = {}
        for cause in OutageCause:
            events = [e for e in simulation.detected()
                      if e.cause is cause]
            if events:
                medians[cause] = statistics.median(
                    e.longest_outage_days() for e in events)
        assert medians[OutageCause.SUBSEA_CABLE_CUT] == max(
            medians.values())

    def test_deterministic(self, topo, phys):
        a = OutageSimulator(topo, phys).simulate(years=0.5)
        b = OutageSimulator(topo, phys).simulate(years=0.5)
        assert len(a.events) == len(b.events)
        assert [e.cause for e in a.events] == [e.cause for e in b.events]


class TestMarchScenario:
    def test_cable_sets(self, topo):
        west, east = march_2024_scenario(topo)
        assert len(west) == 4 and len(east) == 3
        names = {c.cable_id: c.name for c in topo.cables}
        assert {names[c] for c in west} == \
            {"WACS", "MainOne", "SAT-3/WASC", "ACE"}
        assert {names[c] for c in east} == {"EIG", "SEACOM", "AAE-1"}

    def test_west_cut_hits_ghana_hard(self, topo, phys):
        west, _ = march_2024_scenario(topo)
        before = phys.international_traffic_weight("GH")
        after = phys.international_traffic_weight("GH",
                                                  down_cables=west)
        assert 1.0 - after / before > 0.3  # §1: crippling impact

    def test_east_cut_spares_ghana(self, topo, phys):
        _, east = march_2024_scenario(topo)
        before = phys.international_traffic_weight("GH")
        after = phys.international_traffic_weight("GH",
                                                  down_cables=east)
        assert 1.0 - after / before < 0.05
