"""Valley-free BGP and the physical layer."""

import random

import pytest

from repro import build_world
from repro.routing import (
    BGPRouting,
    PhysicalNetwork,
    RouteKind,
    as_path_geography,
    countries_on_path,
    is_valley_free,
    path_rtt_ms,
)
from repro.topology import AS, ASKind, ASLink, Relationship, Topology
from repro.topology.model import Topology as TopoModel


def _mini_topology():
    """Hand-built 6-AS world: T1 on top, two mid providers, three stubs.

            T1(1)
           /     \\
        B(10)   C(20)     B--C are peers
        /   \\      \\
     X(100) Y(200) Z(300)
    """
    ases = {}

    def mk(asn, tier, kind=ASKind.TRANSIT, cc="DE"):
        ases[asn] = AS(asn=asn, name=f"AS{asn}", country_iso2=cc,
                       kind=kind, tier=tier)

    mk(1, 1)
    mk(10, 2)
    mk(20, 2)
    mk(100, 3, ASKind.FIXED, "GH")
    mk(200, 3, ASKind.FIXED, "KE")
    mk(300, 3, ASKind.FIXED, "ZA")
    links = [
        ASLink(1, 10, Relationship.PROVIDER_TO_CUSTOMER),
        ASLink(1, 20, Relationship.PROVIDER_TO_CUSTOMER),
        ASLink(10, 20, Relationship.PEER_TO_PEER),
        ASLink(10, 100, Relationship.PROVIDER_TO_CUSTOMER),
        ASLink(10, 200, Relationship.PROVIDER_TO_CUSTOMER),
        ASLink(20, 300, Relationship.PROVIDER_TO_CUSTOMER),
    ]
    for link in links:
        if link.rel is Relationship.PROVIDER_TO_CUSTOMER:
            ases[link.a].customers.add(link.b)
            ases[link.b].providers.add(link.a)
        else:
            ases[link.a].peers.add(link.b)
            ases[link.b].peers.add(link.a)
    return TopoModel(
        params=build_world.__defaults__ and __import__(
            "repro.topology.calibration",
            fromlist=["WorldParams"]).WorldParams(),
        ases=ases, links=links, ixps={}, cables=[], terrestrial=[],
        datacenters=[], cdns=[], cloud_resolvers=[], resolver_configs={},
        websites={})


class TestBGPMini:
    def test_sibling_stubs_route_via_shared_provider(self):
        topo = _mini_topology()
        r = BGPRouting(topo)
        assert r.path(100, 200) == [100, 10, 200]

    def test_peer_route_preferred_over_provider(self):
        topo = _mini_topology()
        r = BGPRouting(topo)
        # 100 -> 300 can go via peer link 10--20 (up, peer, down); the
        # provider route via T1 has the same length but peer routes are
        # not even needed at 100 — check 10's own table instead.
        table = r.routes_to(300)
        assert table[10].kind is RouteKind.PEER
        assert r.path(100, 300) == [100, 10, 20, 300]

    def test_self_route(self):
        topo = _mini_topology()
        r = BGPRouting(topo)
        assert r.path(100, 100) == [100]

    def test_customer_preferred_over_peer(self):
        topo = _mini_topology()
        r = BGPRouting(topo)
        table = r.routes_to(200)
        # 10 reaches 200 via its customer link, never via 1 or 20.
        assert table[10].kind is RouteKind.CUSTOMER
        assert table[20].kind is RouteKind.PEER

    def test_link_filter_removes_adjacency(self):
        topo = _mini_topology()
        r = BGPRouting(topo, link_filter=lambda l: not (
            l.a == 10 and l.b == 200))
        path = r.path(100, 200)
        # Forced the long way: up to T1 and down via nothing... 200 is
        # only reachable through 10; removing the link isolates it.
        assert path is None

    def test_reachable_from(self):
        topo = _mini_topology()
        r = BGPRouting(topo)
        assert r.reachable_from(300) == {1, 10, 20, 100, 200, 300}


class TestBGPWorld:
    def test_full_reachability(self, topo, routing):
        random.seed(3)
        asns = sorted(topo.ases)
        sample = random.sample(asns, 25)
        dst = topo.as_(36924).asn
        for src in sample:
            assert routing.path(src, dst) is not None

    def test_paths_are_valley_free(self, topo, routing):
        random.seed(7)
        asns = sorted(topo.ases)
        for _ in range(120):
            src, dst = random.sample(asns, 2)
            path = routing.path(src, dst)
            assert path is not None
            assert is_valley_free(topo, path), path

    def test_paths_loop_free(self, topo, routing):
        random.seed(11)
        asns = sorted(topo.ases)
        for _ in range(60):
            src, dst = random.sample(asns, 2)
            path = routing.path(src, dst)
            assert len(path) == len(set(path))


class TestPhysical:
    def test_route_exists_between_coastal_africans(self, phys):
        route = phys.route("GH", "ZA")
        assert route is not None and not route.uses_satellite
        assert route.rtt_ms > 0

    def test_cable_cut_changes_route(self, topo, phys):
        base = phys.route("GH", "PT", avoid_satellite=True)
        assert base is not None
        cut = frozenset(base.cables_used)
        rerouted = phys.route("GH", "PT", down_cables=cut,
                              avoid_satellite=True)
        if rerouted is not None:
            assert rerouted.cables_used.isdisjoint(cut)
            assert rerouted.rtt_ms >= base.rtt_ms

    def test_satellite_fallback(self, topo):
        phys = PhysicalNetwork(topo)
        all_cables = [c.cable_id for c in topo.cables]
        route = phys.route("SC", "DE", down_cables=all_cables)
        assert route is not None and route.uses_satellite

    def test_landlocked_routes_via_neighbors(self, phys):
        route = phys.route("RW", "DE", avoid_satellite=True)
        assert route is not None
        assert any(e.medium == "terrestrial" for e in route.edges)

    def test_candidate_cables_superset_of_best(self, phys):
        best = phys.route("GH", "PT", avoid_satellite=True)
        candidates = phys.candidate_cables("GH", "PT")
        assert best.cables_used <= candidates

    def test_direct_cables(self, topo, phys):
        direct = phys.direct_cables("GH", "NG")
        names = {c.name for c in topo.cables if c.cable_id in direct}
        assert "MainOne" in names

    def test_capacity_drops_when_cut(self, topo, phys):
        from repro.outages import march_2024_scenario
        west, _ = march_2024_scenario(topo)
        before = phys.international_traffic_weight("GH")
        after = phys.international_traffic_weight("GH", down_cables=west)
        assert after < before

    def test_same_country_route_trivial(self, phys):
        route = phys.route("GH", "GH")
        assert route.rtt_ms == 0.0 and not route.edges


class TestGeography:
    def test_hop_geography(self, topo, routing):
        sites = as_path_geography(topo, routing, 36924, 36924)
        assert sites == [sites[0]]
        src = 36924
        dst = next(a.asn for a in topo.ases_in_country("GH")
                   if a.kind.is_eyeball)
        sites = as_path_geography(topo, routing, src, dst)
        assert sites[0].country_iso2 == "RW"
        assert sites[-1].country_iso2 == "GH"

    def test_countries_on_path_dedupes(self):
        from repro.routing import HopSite
        sites = [HopSite(1, "GH"), HopSite(2, "GH"), HopSite(3, "NG")]
        assert countries_on_path(sites) == ["GH", "NG"]

    def test_rtt_positive_and_distance_sensitive(self, topo, routing,
                                                 phys):
        src = 36924
        near = next(a.asn for a in topo.ases_in_country("UG")
                    if a.kind.is_eyeball)
        far = next(a.asn for a in topo.ases_in_country("US")
                   if a.kind.is_eyeball)
        near_sites = as_path_geography(topo, routing, src, near)
        far_sites = as_path_geography(topo, routing, src, far)
        near_rtt = path_rtt_ms(topo, phys, near_sites)
        far_rtt = path_rtt_ms(topo, phys, far_sites)
        assert near_rtt is not None and far_rtt is not None
        assert 0 < near_rtt
