"""Fig. 4 — characterization of the impact of outages.

Paper: Africa experiences ~4x the outages of EU/N. America; subsea
cable cuts affect the most countries per event and take the longest to
resolve (~30 countries hit over two years).
"""

from conftest import emit

from repro.analysis import analyze_outages
from repro.datasets import build_radar_feed
from repro.outages import OutageCause, OutageSimulator
from repro.reporting import ascii_table


def _simulate(topo, phys):
    simulation = OutageSimulator(topo, phys).simulate(years=2.0)
    feed = build_radar_feed(simulation, seed=topo.params.seed)
    return simulation, analyze_outages(simulation, feed)


def test_fig4_outage_impact(benchmark, topo, phys):
    simulation, report = benchmark(_simulate, topo, phys)
    rows = [[row.cause, row.events,
             f"{row.median_duration_days:.2f}",
             f"{row.max_duration_days:.1f}",
             f"{row.mean_countries_affected:.1f}",
             row.countries_affected_total]
            for row in sorted(report.rows,
                              key=lambda r: -r.median_duration_days)]
    emit(ascii_table(
        ["cause", "events", "median days", "max days",
         "countries/event", "countries total"],
        rows,
        title="Fig.4 outage impact over 2 simulated years "
              "(paper: cable cuts longest, widest)"))
    emit(f"Outage rate: Africa "
         f"{report.africa_rate_per_country_year:.2f}/country/yr vs "
         f"EU+NA {report.reference_rate_per_country_year:.2f} — ratio "
         f"{report.rate_ratio():.1f}x (paper: ~4x)\n"
         f"African countries hit by cable cuts: "
         f"{len(simulation.countries_hit_by_cable_cuts())} "
         f"(paper: ~30 over two years)")
    assert report.longest_cause() == OutageCause.SUBSEA_CABLE_CUT.value
    assert report.rate_ratio() > 2.0
    assert 10 <= len(simulation.countries_hit_by_cable_cuts()) <= 54
