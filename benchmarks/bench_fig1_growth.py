"""Fig. 1 — growth of critical infrastructure over the last 10 years.

Paper: Africa's IXPs grew ~600% and cables ~45% over 2015-2025, faster
*relative* growth than mature regions but from a much smaller base.
"""

from conftest import emit

from repro.analysis import african_growth_series, analyze_growth
from repro.reporting import ascii_table, series


def test_fig1_growth(benchmark, topo):
    report = benchmark(analyze_growth, topo)
    rows = []
    for row in report.rows:
        rows.append([
            row.region_label,
            f"{row.ixps_before}->{row.ixps_after}",
            f"{row.ixp_growth_pct:+.0f}%",
            f"{row.cables_before}->{row.cables_after}",
            f"{row.cable_growth_pct:+.0f}%",
            f"{row.asns_before}->{row.asns_after}",
            f"{row.asn_growth_pct:+.0f}%",
        ])
    emit(ascii_table(
        ["region", "IXPs", "IXP growth", "cables", "cable growth",
         "ASNs", "ASN growth"],
        rows,
        title="Fig.1 infrastructure growth 2015->2025 "
              "(paper: Africa IXPs +600%, cables +45%)"))
    yearly = african_growth_series(topo)
    emit(series("Africa IXP count by year",
                [(str(y), float(i)) for y, i, _, _ in yearly],
                fmt="{:.0f}"))
    africa = report.africa()
    assert 450 <= africa.ixp_growth_pct <= 750
    assert 30 <= africa.cable_growth_pct <= 75
    europe = report.row_for("Europe")
    assert africa.ixp_growth_pct > europe.ixp_growth_pct
    # Absolute maturity still lags every reference region (§2).
    assert africa.ixps_after < min(
        r.ixps_after for r in report.rows if r.region_label != "Africa")
