"""Fig. 2b — content localization across Africa.

Paper: only ~30% of popular content is served from within Africa;
Southern Africa is the most content-local region, Western the least
mature of the majors.
"""

from conftest import emit

from repro.analysis import analyze_content_locality
from repro.datasets import run_pulse_study
from repro.geo import Region
from repro.reporting import ascii_table, pct


def test_fig2b_content_locality(benchmark, topo):
    study = run_pulse_study(topo)
    report = benchmark(analyze_content_locality, study)
    rows = [[row.region.value, row.samples,
             pct(row.africa_local_share), pct(row.in_country_share),
             pct(row.cdn_share)]
            for row in report.rows]
    rows.append(["All Africa", len(study.samples),
                 pct(report.overall_africa_share()), "", ""])
    emit(ascii_table(
        ["region", "sites", "served from Africa", "served in-country",
         "CDN share"],
        rows,
        title="Fig.2b content localization (paper: ~30% local overall)"))
    assert 0.20 < report.overall_africa_share() < 0.45
    assert report.most_local_region() is Region.SOUTHERN_AFRICA
