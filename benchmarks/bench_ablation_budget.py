"""Ablation — cost-aware scheduling vs naive round-robin.

DESIGN.md choice 4: under prepaid-bundle pricing the first byte of a
new bundle costs the whole bundle, so cost-blind task placement wastes
budget in exactly the markets the Observatory most needs to cover.
"""

from conftest import emit

from repro.observatory import (
    MeasurementTask,
    ObservatoryPlatform,
    PlacementObjective,
    schedule_cost_aware,
    schedule_round_robin,
)
from repro.reporting import ascii_table


def _tasks():
    tasks = []
    for i in range(60):
        tasks.append(MeasurementTask(
            task_id=f"t{i}", kind="traceroute",
            target=f"target-{i % 12}", app_bytes=120_000,
            runs_per_month=30, utility=1.0 + (i % 4)))
    return tasks


def test_ablation_scheduler(benchmark, topo):
    platform = ObservatoryPlatform(
        topo, objective=PlacementObjective.COUNTRY_COVERAGE,
        probe_budget=25)
    probes = platform.fleet.probes
    tasks = _tasks()
    smart = benchmark(schedule_cost_aware, probes, tasks, 6.0)
    naive = schedule_round_robin(probes, tasks, 6.0)
    rows = []
    for name, schedule in (("cost-aware + reuse", smart),
                           ("round-robin baseline", naive)):
        rows.append([name, len(schedule.assignments),
                     len(schedule.unplaced),
                     f"${schedule.total_cost_usd:.2f}",
                     f"{schedule.total_utility:.0f}",
                     f"{schedule.utility_per_dollar():.2f}"])
    emit(ascii_table(
        ["scheduler", "placed", "unplaced", "spend", "utility",
         "utility/$"],
        rows,
        title="Ablation: budget-aware scheduling (§7.1)"))
    assert smart.utility_per_dollar() >= naive.utility_per_dollar()
    assert smart.total_utility >= naive.total_utility
