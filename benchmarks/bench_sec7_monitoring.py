"""§7 — the Observatory in operation: continuous outage detection.

The platform's reason to exist: a purpose-placed active-measurement
fleet catches degradations that traffic-drop monitoring (the Radar
methodology the paper has to rely on today, §3) never lists — partial
capacity losses, short events, small markets.
"""

from conftest import emit

from repro.measurement import build_observatory_platform
from repro.observatory import (
    MonitoringRunner,
    PlacementObjective,
    place_probes,
)
from repro.outages import OutageSimulator
from repro.reporting import ascii_table, pct


def test_sec7_continuous_monitoring(benchmark, topo, phys):
    platform = build_observatory_platform(
        topo, place_probes(topo, PlacementObjective.COUNTRY_COVERAGE))
    simulation = OutageSimulator(topo, phys).simulate(years=0.5)
    runner = MonitoringRunner(topo, phys, platform)
    report = benchmark(runner.run, simulation, 180)
    emit(ascii_table(
        ["detector", "outage (event, country) pairs caught"],
        [["Observatory active probing",
          f"{len(report.detected_truth)}/{len(report.truth)} "
          f"({pct(report.recall())})"],
         ["traffic-drop monitor (Radar-style)",
          f"{len(report.radar_truth)}/{len(report.truth)} "
          f"({pct(report.radar_recall())})"]],
        title="§7 continuous monitoring over 180 days "
              "(truth: impacts >= 10% severity in probed countries)"))
    emit(f"Fleet: {len(platform)} probes across "
         f"{len(platform.countries())} countries; "
         f"{len(report.health)} country-days measured, "
         f"{report.false_alarm_days()} false-alarm country-days; "
         f"sub-threshold impacts (invisible to traffic-drop monitors) "
         f"caught: {pct(report.sub_threshold_recall())}")
    assert report.sub_threshold_recall() > 0.3
    assert report.recall() >= report.radar_recall() - 0.1
    assert report.false_alarm_days() < 0.05 * len(report.health)
