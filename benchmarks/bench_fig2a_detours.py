"""Fig. 2a — prevalence of intra-African routes detouring off-continent.

Paper: a non-trivial share of intra-African routes still leaves the
continent; only ~40% of detours are attributable to EU Tier-1s/IXPs
(the rest indicate European Tier-2 transit dependence); Southern Africa
is the most route-local region.
"""

from conftest import emit

from repro.analysis import analyze_snapshot
from repro.geo import AFRICAN_REGIONS, Region
from repro.reporting import ascii_table, pct


def test_fig2a_detours(benchmark, topo, snapshot, geo, directory):
    report = benchmark(analyze_snapshot, topo, snapshot, geo, directory)
    rows = [["All intra-African",
             report.sample_count(), pct(report.detour_rate())]]
    for region in AFRICAN_REGIONS:
        n = report.sample_count(region)
        rows.append([region.value, n,
                     pct(report.detour_rate(region)) if n else "n/a"])
    emit(ascii_table(
        ["scope", "pairs", "detour rate"], rows,
        title="Fig.2a detour prevalence "
              "(paper: non-trivial, Southern most local)"))
    emit(f"Detour attribution to Tier-1/EU-IXP: "
         f"{pct(report.attribution_share())} (paper: ~40%)")
    assert report.detour_rate() > 0.4
    assert report.detour_rate(Region.SOUTHERN_AFRICA) < \
        report.detour_rate(Region.WESTERN_AFRICA)
    assert 0.2 < report.attribution_share() < 0.7
