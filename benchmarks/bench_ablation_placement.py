"""Ablation — greedy set cover vs random / degree-based placement.

DESIGN.md choice 3: how much of the Observatory's IXP coverage comes
from the *optimization* rather than just deploying probes in Africa.
"""

import random

from conftest import emit

from repro.observatory import greedy_set_cover, ixp_cover_hosts
from repro.reporting import ascii_table


def _membership(topo):
    return {asn: {i for i in a.ixps if topo.ixps[i].is_african}
            for asn, a in topo.ases.items()
            if any(topo.ixps[i].is_african for i in a.ixps)}


def _covered_by(membership, picks):
    covered = set()
    for asn in picks:
        covered |= membership.get(asn, set())
    return len(covered)


def test_ablation_placement_strategies(benchmark, topo):
    membership = _membership(topo)
    universe = {x.ixp_id for x in topo.african_ixps()}
    greedy = benchmark(ixp_cover_hosts, topo)
    budget = len(greedy.chosen)

    rng = random.Random(31)
    candidates = sorted(membership)
    random_cover = max(
        _covered_by(membership, rng.sample(candidates, budget))
        for _ in range(20))
    by_degree = sorted(candidates,
                       key=lambda a: (-len(membership[a]), a))[:budget]
    degree_cover = _covered_by(membership, by_degree)

    rows = [
        ["greedy set cover", budget,
         f"{len(greedy.covered)}/{len(universe)}"],
        ["highest-degree ASes", budget,
         f"{degree_cover}/{len(universe)}"],
        ["random placement (best of 20)", budget,
         f"{random_cover}/{len(universe)}"],
    ]
    emit(ascii_table(
        ["strategy", "probes", "African IXPs covered"],
        rows,
        title="Ablation: placement objective matters (footnote 1)"))
    assert len(greedy.covered) >= degree_cover
    assert len(greedy.covered) > random_cover
