"""§7.1 — cost-conscious scheduling under per-country pricing models.

Paper requirement: "judiciously allocate the bandwidth budget ...
maximizing reuse and meeting a predefined budget", supporting multiple
pricing models and low-level (billed) rather than application-level
accounting.
"""

from conftest import emit

from repro.measurement import AccessTech
from repro.observatory import (
    MeasurementTask,
    ObservatoryPlatform,
    PlacementObjective,
    plan_for,
    schedule_cost_aware,
    wire_bytes,
)
from repro.reporting import ascii_table


def _campaign_tasks():
    tasks = []
    for i in range(40):
        tasks.append(MeasurementTask(
            task_id=f"trace-{i}", kind="traceroute",
            target=f"ixp-member-{i % 10}", app_bytes=150_000,
            runs_per_month=240, utility=2.0))
    for i in range(20):
        tasks.append(MeasurementTask(
            task_id=f"dns-{i}", kind="dns", target=f"resolver-{i % 5}",
            app_bytes=20_000, runs_per_month=960, utility=1.5))
    for i in range(10):
        tasks.append(MeasurementTask(
            task_id=f"page-{i}", kind="pageload", target=f"top-site-{i}",
            app_bytes=25_000_000, runs_per_month=60, utility=3.0,
            requires_access=AccessTech.CELLULAR))
    return tasks


def test_sec71_budget_sweep(benchmark, topo):
    platform = ObservatoryPlatform(
        topo, objective=PlacementObjective.IXP_COVERAGE)
    tasks = _campaign_tasks()
    rows = []
    for budget in (2.0, 5.0, 10.0, 25.0):
        schedule = schedule_cost_aware(platform.fleet.probes, tasks,
                                       budget)
        rows.append([f"${budget:.0f}",
                     len(schedule.assignments), len(schedule.unplaced),
                     f"${schedule.total_cost_usd:.2f}",
                     f"{schedule.total_utility:.0f}",
                     f"{schedule.utility_per_dollar():.1f}"])
    emit(ascii_table(
        ["monthly budget/probe", "placed", "unplaced", "spend",
         "utility", "utility/$"],
        rows,
        title="§7.1 budget-aware scheduling sweep"))
    schedule = benchmark(schedule_cost_aware, platform.fleet.probes,
                         tasks, 10.0)
    for account in schedule.accounts.values():
        assert account.spent_usd <= 10.0 + 1e-9


def test_sec71_pricing_models_differ(benchmark, topo):
    """The same workload costs wildly different amounts per market."""
    rows = []
    workload = benchmark(wire_bytes, 500 * 2**20,
                         AccessTech.CELLULAR)
    per_gb = {}
    for iso2 in ("DE", "ZA", "KE", "NG", "CD"):
        plan = plan_for(iso2)
        from repro.observatory import BudgetAccount
        account = BudgetAccount(plan, monthly_budget_usd=1e9)
        cost = account.charge(workload)
        per_gb[iso2] = plan.usd_per_gb
        rows.append([iso2, plan.model.value, f"${plan.usd_per_gb:.2f}",
                     f"${cost:.2f}"])
    emit(ascii_table(
        ["country", "pricing model", "USD/GB", "cost of 500MB-app "
         "cellular workload (billed bytes)"],
        rows,
        title="§7.1 the same campaign priced per market "
              "(postpaid rows pay a flat subscription)"))
    # The paper's cost problem: African mobile data costs a multiple of
    # European rates, Central Africa worst of all.
    assert per_gb["CD"] > per_gb["DE"] * 3
    assert per_gb["NG"] > per_gb["DE"] * 2
