"""§8 — the what-if simulators the Observatory exists to feed.

Three interventions regulators keep asking about (§1), each measured
as baseline vs modified world:

* a geographically diverse cable for a west-coast economy,
* legislated DNS localisation,
* mandated local peering at the national IXP.
"""

from conftest import emit

from repro.observatory import (
    WhatIfAddCable,
    WhatIfLocalizeDNS,
    WhatIfMandateLocalPeering,
)
from repro.outages import march_2024_scenario
from repro.reporting import ascii_table


def test_whatif_diverse_cable(benchmark, topo):
    west, _ = march_2024_scenario(topo)
    scenario = WhatIfAddCable(topo)
    modified = benchmark(scenario.apply, "Diverse-SouthAtlantic",
                         ("GH", "BR"), 80.0)
    rows = []
    for cc in ("GH", "CI", "NG"):
        outcome = scenario.cut_severity(cc, west, modified)
        rows.append([cc, f"{outcome.baseline:.0%}",
                     f"{outcome.modified:.0%}",
                     f"{outcome.delta:+.0%}"])
    emit(ascii_table(
        ["country", "March-2024 severity", "with diverse cable",
         "delta"],
        rows,
        title="What-if: geographically diverse cable (§5.1 implication)"))
    gh = scenario.cut_severity("GH", west, modified)
    assert gh.modified < gh.baseline


def test_whatif_dns_localization(benchmark, topo):
    west, _ = march_2024_scenario(topo)
    scenario = WhatIfLocalizeDNS(topo)
    benchmark(scenario.apply, "GH", 1.0)
    rows = []
    for share in (0.0, 0.5, 1.0):
        modified = scenario.apply("GH", share) if share else topo
        outcome = scenario.outage_resolution_failure(
            "GH", west, modified, domains=4)
        rows.append([f"{share:.0%}", f"{outcome.modified:.0%}"])
    emit(ascii_table(
        ["resolvers localized", "DNS failure rate during cut"],
        rows,
        title="What-if: legislated resolver localisation for Ghana "
              "(§5.2 takeaway)"))
    full = scenario.outage_resolution_failure(
        "GH", west, scenario.apply("GH", 1.0), domains=4)
    assert full.modified <= full.baseline


def test_whatif_mandated_peering(benchmark, topo):
    scenario = WhatIfMandateLocalPeering(topo)
    modified = benchmark(scenario.apply, "NG")
    outcome = scenario.domestic_detour_rate("NG", modified)
    emit(f"What-if mandated local peering in NG: domestic detour rate "
         f"{outcome.baseline:.0%} -> {outcome.modified:.0%} "
         f"(boomerang routing eliminated)")
    assert outcome.modified <= outcome.baseline
