"""Fig. 3 — prevalence of IXPs in local traffic.

Paper: only ~10% of intra-African traceroutes traverse any IXP; the
best region (Central, dominated by Kinshasa pairs over KINIX) reaches
~55%; Northern Africa is excluded because no IXP shows up in the data.
"""

from conftest import emit

from repro.analysis import analyze_snapshot
from repro.geo import AFRICAN_REGIONS, Region
from repro.reporting import ascii_table, bar_chart, pct


def test_fig3_ixp_prevalence(benchmark, topo, snapshot, geo, directory):
    report = benchmark(analyze_snapshot, topo, snapshot, geo, directory)
    rows = [["All intra-African", report.sample_count(),
             pct(report.ixp_traversal_rate())]]
    points = []
    for region in AFRICAN_REGIONS:
        n = report.sample_count(region)
        rate = report.ixp_traversal_rate(region)
        excluded = n == 0 or (rate == 0.0
                              and region is Region.NORTHERN_AFRICA)
        rows.append([region.value, n,
                     "excluded (no IXPs in data)" if excluded
                     else pct(rate)])
        if not excluded:
            points.append((region.value, rate))
    emit(ascii_table(["scope", "pairs", "IXP traversal"], rows,
                     title="Fig.3 IXP prevalence in local traffic "
                           "(paper: ~10% overall, best region ~55%)"))
    emit(bar_chart(points, title="Fig.3 traversal by region"))
    assert report.ixp_traversal_rate() < 0.35
    northern = report.ixp_traversal_rate(Region.NORTHERN_AFRICA)
    assert northern < 0.05  # effectively invisible, as in the paper
    best = max(report.ixp_traversal_rate(r) for r in AFRICAN_REGIONS)
    assert best > 2 * report.ixp_traversal_rate()
