"""§5.2 takeaway — the policy-compliance watchdog.

"Similar efforts should be made to legislate these critical
dependencies and ... watchdogs should be created to continuously
assess policy adherence."  We run the default legislative package over
the continent and show where it fails — and that the correlated-
failure-aware diversity metric disagrees with naive cable counting.
"""

from conftest import emit

from repro.geo import AFRICAN_REGIONS
from repro.observatory import (
    DEFAULT_POLICY_PACKAGE,
    PolicyKind,
    PolicyWatchdog,
)
from repro.reporting import ascii_table, pct


def test_sec52_compliance_sweep(benchmark, topo, phys):
    watchdog = PolicyWatchdog(topo, phys)
    report = benchmark(watchdog.assess, DEFAULT_POLICY_PACKAGE)
    rows = []
    for kind in PolicyKind:
        rows.append([kind.value, pct(report.compliance_rate(kind))])
    emit(ascii_table(
        ["policy", "countries compliant"],
        rows,
        title="§5.2 watchdog: continental compliance with the default "
              "legislative package"))
    by_region = {}
    for region in AFRICAN_REGIONS:
        from repro.geo import countries_in_region
        ccs = [c.iso2 for c in countries_in_region(region)]
        findings = [f for f in report.findings if f.iso2 in ccs]
        by_region[region.value] = (
            sum(f.compliant for f in findings) / len(findings))
    emit(ascii_table(
        ["region", "compliance"],
        [[k, pct(v)] for k, v in by_region.items()],
        title="Compliance by region"))
    assert 0.1 < report.compliance_rate() < 0.9  # room for regulation
    # DNS localisation is the weakest front (§5.2's alarm).
    assert report.compliance_rate(PolicyKind.DNS_LOCALIZATION) < 0.6


def test_sec52_diversity_vs_cable_count(benchmark, topo, phys):
    """§5.1: legislation that counts cables overstates resilience;
    counting *corridors* is what matters."""
    watchdog = PolicyWatchdog(topo, phys)
    countries = ("GH", "NG", "CI", "SN", "KE", "DJ")
    diverse = benchmark(
        lambda: {cc: watchdog.diverse_path_count(cc)
                 for cc in countries})
    rows = []
    overstated = 0
    for iso2 in countries:
        cables = len(topo.cables_landing_in(iso2))
        corridors = diverse[iso2]
        rows.append([iso2, cables, corridors])
        if cables >= 2 * corridors:
            overstated += 1
    emit(ascii_table(
        ["country", "cables landed (naive diversity)",
         "physically diverse paths (corridor-aware)"],
        rows,
        title="§5.1 implication: collocation makes cable counts "
              "misleading"))
    assert overstated >= 3
