"""Table 1 — dataset size and African coverage of scanning strategies.

Paper:  CAIDA Hitlist  3,908,236  64.4% / 35.45% /  7.8%
        ANT Hitlist    5,999,014  96%   / 71.4%  / 23.5%
        YARRP            766,263  56.1% / 27.2%  /  2.9%
(columns: entries, mobile-ASN, non-mobile-ASN, IXP coverage.)
"""

from conftest import emit

from repro.analysis import build_coverage_table, regional_coverage
from repro.datasets import build_delegated_file
from repro.measurement import (
    run_ant_hitlist,
    run_caida_prefix_scan,
    run_yarrp_scan,
)
from repro.reporting import ascii_table, pct


def _scan_all(topo, routing):
    return [
        run_caida_prefix_scan(topo),
        run_ant_hitlist(topo),
        run_yarrp_scan(topo, routing),
    ]


def test_table1_coverage(benchmark, topo, routing):
    scans = benchmark(_scan_all, topo, routing)
    delegated = build_delegated_file(topo)
    table = build_coverage_table(topo, delegated, scans)
    rows = [[row.dataset, row.entries, pct(row.mobile_coverage),
             pct(row.non_mobile_coverage), pct(row.ixp_coverage)]
            for row in table.rows]
    emit(ascii_table(
        ["dataset", "entries", "mobile ASN", "non-mobile ASN", "IXP"],
        rows,
        title="Table 1 coverage in Africa "
              "(paper: ANT 96/71.4/23.5, CAIDA 64.4/35.45/7.8, "
              "YARRP 56.1/27.2/2.9)"))
    regional = regional_coverage(topo, delegated,
                                 table and scans[1])
    emit(ascii_table(
        ["region", "mobile", "non-mobile"],
        [[r.region.value, pct(r.mobile_coverage),
          pct(r.non_mobile_coverage)] for r in regional],
        title="ANT coverage by region (§6.1 regional analysis)"))
    ant = table.row_for("ANT Hitlist")
    caida = table.row_for("CAIDA Routed /24")
    yarrp = table.row_for("YARRP")
    # Shape: ANT wins everywhere; IXP coverage is poor for everyone;
    # entries ordering matches the paper.
    assert table.best_dataset() == "ANT Hitlist"
    assert ant.entries > caida.entries > yarrp.entries
    assert ant.ixp_coverage < 0.35
    assert yarrp.ixp_coverage < 0.10
    assert abs(ant.mobile_coverage - 0.96) < 0.08
    assert abs(caida.mobile_coverage - 0.644) < 0.12
