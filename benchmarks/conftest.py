"""Shared state for the benchmark harness.

Each ``bench_*`` module regenerates one of the paper's tables/figures:
it times the analysis with pytest-benchmark and emits the same
rows/series the paper reports, both to stdout and to
``benchmarks/results.txt`` (append-mode, truncated at session start) so
EXPERIMENTS.md can quote measured numbers.
"""

from __future__ import annotations

import pathlib

import pytest

from repro import build_world
from repro.datasets import build_ixp_directory, collect_snapshot
from repro.measurement import (
    GeolocationService,
    MeasurementEngine,
    build_atlas_platform,
)
from repro.routing import BGPRouting, PhysicalNetwork

RESULTS_PATH = pathlib.Path(__file__).parent / "results.txt"
DEFAULT_SEED = 2025


def pytest_sessionstart(session):
    RESULTS_PATH.write_text("")


def emit(block: str) -> None:
    """Print a result block and archive it for EXPERIMENTS.md."""
    text = block.rstrip() + "\n\n"
    print("\n" + text, end="")
    with RESULTS_PATH.open("a") as fh:
        fh.write(text)


@pytest.fixture(scope="session")
def topo():
    return build_world(seed=DEFAULT_SEED)


@pytest.fixture(scope="session")
def routing(topo):
    return BGPRouting(topo)


@pytest.fixture(scope="session")
def phys(topo):
    return PhysicalNetwork(topo)


@pytest.fixture(scope="session")
def engine(topo, routing, phys):
    return MeasurementEngine(topo, routing, phys)


@pytest.fixture(scope="session")
def atlas(topo):
    return build_atlas_platform(topo)


@pytest.fixture(scope="session")
def geo(topo):
    return GeolocationService(topo)


@pytest.fixture(scope="session")
def directory(topo):
    return build_ixp_directory(topo)


@pytest.fixture(scope="session")
def snapshot(topo, engine, atlas):
    return collect_snapshot(topo, engine, atlas, max_pairs=1500)
