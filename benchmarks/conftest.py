"""Shared state for the benchmark harness.

Each ``bench_*`` module regenerates one of the paper's tables/figures:
it times the analysis with pytest-benchmark and emits the same
rows/series the paper reports, both to stdout and to
``benchmarks/results.txt`` (append-mode, truncated at session start) so
EXPERIMENTS.md can quote measured numbers.

The session also writes ``benchmarks/BENCH_telemetry.json``: wall-clock
time per benchmark always, plus the full metrics snapshot and span
trees when telemetry is on (``REPRO_TELEMETRY=1``).  That file is the
machine-readable perf baseline future PRs diff against — see
``docs/observability.md``.

Pass ``--workers N`` to fan measurement batches out over N processes
(0 = one per core).  Results are byte-identical for any N — see
``docs/performance.md`` and ``scripts/bench_parallel.py``, which
records the serial/parallel diff in ``benchmarks/BENCH_parallel.json``.
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

from repro import build_world, telemetry
from repro.datasets import build_ixp_directory, collect_snapshot
from repro.exec import (
    get_default_workers,
    pair_for,
    set_default_workers,
    suggested_workers,
)
from repro.measurement import (
    GeolocationService,
    MeasurementEngine,
    build_atlas_platform,
)

RESULTS_PATH = pathlib.Path(__file__).parent / "results.txt"
TELEMETRY_PATH = pathlib.Path(__file__).parent / "BENCH_telemetry.json"
DEFAULT_SEED = 2025

#: nodeid -> per-benchmark record, written at session finish.
_TELEMETRY_RECORDS: dict[str, dict] = {}


def pytest_addoption(parser):
    parser.addoption(
        "--workers", type=int, default=1, metavar="N",
        help="processes for parallel fan-out (default 1; 0 = one per "
             "core); benchmark outputs are identical for any value")


def pytest_configure(config):
    workers = config.getoption("--workers", default=1)
    set_default_workers(workers if workers > 0 else suggested_workers())


def pytest_sessionstart(session):
    RESULTS_PATH.write_text("")


def pytest_sessionfinish(session, exitstatus):
    doc = {
        "format": "repro-bench-telemetry/1",
        "seed": DEFAULT_SEED,
        "telemetry_enabled": telemetry.enabled(),
        "workers": get_default_workers(),
        "benchmarks": _TELEMETRY_RECORDS,
    }
    if telemetry.enabled():
        doc["metrics"] = telemetry.REGISTRY.snapshot()
    TELEMETRY_PATH.write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n")


@pytest.fixture(autouse=True)
def _bench_telemetry(request):
    """Record wall time (and spans, when telemetry is on) per bench."""
    spans_before = len(telemetry.COLLECTOR.roots())
    start = time.perf_counter()
    yield
    record: dict = {
        "duration_s": round(time.perf_counter() - start, 6)}
    if telemetry.enabled():
        roots = telemetry.COLLECTOR.roots()[spans_before:]
        record["spans"] = [root.to_dict() for root in roots]
    _TELEMETRY_RECORDS[request.node.nodeid] = record


def emit(block: str) -> None:
    """Print a result block and archive it for EXPERIMENTS.md."""
    text = block.rstrip() + "\n\n"
    print("\n" + text, end="")
    with RESULTS_PATH.open("a") as fh:
        fh.write(text)


@pytest.fixture(scope="session")
def topo():
    return build_world(seed=DEFAULT_SEED)


@pytest.fixture(scope="session")
def routing(topo):
    return pair_for(topo)[0]


@pytest.fixture(scope="session")
def phys(topo):
    return pair_for(topo)[1]


@pytest.fixture(scope="session")
def engine(topo, routing, phys):
    return MeasurementEngine(topo, routing, phys)


@pytest.fixture(scope="session")
def atlas(topo):
    return build_atlas_platform(topo)


@pytest.fixture(scope="session")
def geo(topo):
    return GeolocationService(topo)


@pytest.fixture(scope="session")
def directory(topo):
    return build_ixp_directory(topo)


@pytest.fixture(scope="session")
def snapshot(topo, engine, atlas):
    return collect_snapshot(topo, engine, atlas, max_pairs=1500)
