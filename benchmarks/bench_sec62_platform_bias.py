"""§6.2 — geographic bias in measurement-platform deployments.

"Geographic bias in the platform deployments limits their
representativeness."  We score the Atlas-like volunteer deployment
against the population it claims to represent, then show the
Observatory's intentional placements closing the worst gaps.
"""

from conftest import emit

from repro.analysis import analyze_platform_bias
from repro.measurement import build_observatory_platform
from repro.observatory import PlacementObjective, place_probes
from repro.reporting import ascii_table


def test_sec62_platform_bias(benchmark, topo, atlas):
    atlas_bias = benchmark(analyze_platform_bias, topo, atlas)
    mobile_hosts = place_probes(
        topo, PlacementObjective.MOBILE_REPRESENTATIVE, budget=40)
    country_hosts = place_probes(
        topo, PlacementObjective.COUNTRY_COVERAGE)
    observatory = build_observatory_platform(
        topo, list(mobile_hosts) + list(country_hosts))
    obs_bias = analyze_platform_bias(topo, observatory)

    rows = []
    for dim in atlas_bias.dimensions:
        obs_dim = obs_bias.dimension(dim.name)
        rows.append([dim.name, f"{dim.tv_distance:.2f}",
                     f"{obs_dim.tv_distance:.2f}" if obs_dim else "—",
                     dim.most_over, dim.most_under])
    emit(ascii_table(
        ["dimension", "Atlas-like bias (TV)", "Observatory bias (TV)",
         "Atlas over-represents", "Atlas under-represents"],
        rows,
        title="§6.2 platform representativeness "
              "(total-variation distance; 0 = representative)"))
    access_atlas = atlas_bias.dimension("access technology")
    access_obs = obs_bias.dimension("access technology")
    # The volunteer platform's worst skew is access technology: fixed
    # probes standing in for a mobile-first population (§7.1).
    assert access_atlas.tv_distance > 0.4
    assert access_atlas.most_under == "cellular"
    # Intentional mobile-representative placement closes that gap.
    assert access_obs.tv_distance < access_atlas.tv_distance
