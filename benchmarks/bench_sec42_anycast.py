"""§4.2 mechanism — anycast catchments drain African clients to Europe.

MAnycast-style census over all African countries: even services with
African PoPs serve a large share of African clients from Europe
(capacity-weighted routing ties), which is the plumbing behind both
Fig. 2b's content numbers and Fig. 2c's cloud resolvers.
"""

from conftest import emit

from repro.geo import AFRICAN_COUNTRIES, country
from repro.measurement import AnycastMeasurement, services_from_topology
from repro.outages import march_2024_scenario
from repro.reporting import ascii_table, pct


def test_sec42_anycast_census(benchmark, topo, phys):
    measurement = AnycastMeasurement(topo, phys)
    services = services_from_topology(topo)
    census = benchmark(measurement.census, sorted(AFRICAN_COUNTRIES),
                       services)
    sites = census.site_distribution()
    total = sum(sites.values())
    rows = [[cc, n, pct(n / total),
             "Africa" if country(cc).is_african else "abroad"]
            for cc, n in sorted(sites.items(), key=lambda kv: -kv[1])]
    emit(ascii_table(
        ["site", "catchment share", "%", "continent"],
        rows,
        title="§4.2 anycast census: where African clients land"))
    emit(f"African clients staying on African sites: "
         f"{pct(census.african_locality())}")
    assert 0.2 < census.african_locality() < 0.8
    assert any(not country(cc).is_african for cc in sites)


def test_sec42_catchments_under_cable_cut(benchmark, topo, phys):
    """The March-2024 event re-homes West-African catchments."""
    measurement = AnycastMeasurement(topo, phys)
    west, _ = march_2024_scenario(topo)
    clients = ["GH", "CI", "NG", "SN", "BJ", "TG"]
    base = measurement.census(clients)
    cut = benchmark(measurement.census, clients, None, west)
    base_local = base.african_locality()
    cut_local = cut.african_locality()
    emit(f"§4.2 under the west-coast cut: West-African anycast "
         f"locality {pct(base_local)} -> {pct(cut_local)} "
         f"({len(cut.observations)}/{len(base.observations)} "
         f"catchments still reachable)")
    assert len(cut.observations) <= len(base.observations)
