"""§1 — the user-facing impact that motivates the paper.

"Ghana's ministry noted that cable cuts disrupted banking transactions
and digital payments."  The page-load simulator composes every §4-§5
dependency (DNS, detour RTTs, congestion, foreign third parties) into
the metric users actually experience, before and during the March-2024
event.
"""

from conftest import emit

from repro.measurement import AccessTech, run_pageload_study
from repro.outages import march_2024_scenario
from repro.reporting import ascii_table


def _study_pair(topo, phys, iso2, west):
    base = run_pageload_study(topo, phys, iso2, sites_per_client=6)
    cut = run_pageload_study(topo, phys, iso2, sites_per_client=6,
                             down_cables=west)
    return base, cut


def test_sec1_pageload_during_cut(benchmark, topo, phys):
    west, _ = march_2024_scenario(topo)
    rows = []
    pairs = {}
    for iso2 in ("GH", "CI", "NG", "KE", "ZA"):
        base, cut = _study_pair(topo, phys, iso2, west)
        pairs[iso2] = (base, cut)
        fmt = lambda v: f"{v:.0f} ms" if v else "—"
        rows.append([iso2,
                     f"{base.failure_rate():.0%}",
                     fmt(base.median_load_ms()),
                     f"{cut.failure_rate():.0%}",
                     fmt(cut.median_load_ms())])
    emit(ascii_table(
        ["country", "failures (normal)", "median load (normal)",
         "failures (March-2024)", "median load (March-2024)"],
        rows,
        title="§1 user impact: mobile page loads before/during the "
              "west-coast cable cuts"))
    benchmark(run_pageload_study, topo, phys, "GH", west, 4)
    gh_base, gh_cut = pairs["GH"]
    ke_base, ke_cut = pairs["KE"]
    assert gh_cut.failure_rate() > gh_base.failure_rate() + 0.2
    assert ke_cut.failure_rate() <= ke_base.failure_rate() + 0.05


def test_sec1_third_party_dependence(benchmark, topo, phys):
    """Even healthy pages pay for foreign dependencies ([45])."""
    from repro.measurement import PageLoadSimulator, dependencies_of
    simulator = PageLoadSimulator(topo, phys)
    client = next(a.asn for a in topo.ases_in_country("GH")
                  if a.asn in topo.resolver_configs)
    dep_counts = benchmark(
        lambda: [len(dependencies_of(s))
                 for s in topo.websites["GH"][:20]])
    pages = len(dep_counts)
    foreign_deps = sum(dep_counts)
    emit(f"§1 dependency surface: GH top pages embed "
         f"{foreign_deps / pages:.1f} foreign third-party services on "
         "average — each an independent failure point during cuts")
    assert foreign_deps / pages >= 1.0
