"""§5.1 — correlated cable failures and the March-2024 replay.

Paper: one incident near Abidjan cut four co-located cables (WACS,
MainOne, SAT-3, ACE), ~10 countries down each event, backups often
oversubscribed because everyone fails over at once.
"""

from conftest import emit

from repro.analysis import analyze_correlation
from repro.observatory import WhatIfCutCables
from repro.outages import OutageSimulator, march_2024_scenario
from repro.reporting import ascii_table


def test_sec51_march_2024_replay(benchmark, topo, phys):
    west, east = march_2024_scenario(topo)
    scenario = WhatIfCutCables(topo)
    severities = benchmark(scenario.country_severities, west)
    heavy = {cc: s for cc, s in severities.items() if s >= 0.25}
    rows = sorted(heavy.items(), key=lambda kv: -kv[1])
    emit(ascii_table(
        ["country", "traffic lost"],
        [[cc, f"{s:.0%}"] for cc, s in rows],
        title="§5.1 March-2024 west-coast replay: "
              "WACS+MainOne+SAT-3+ACE cut "
              "(paper: ~10 countries down per event)"))
    assert 5 <= len(heavy) <= 25
    assert heavy.get("GH", 0) > 0.25  # Ghana's documented crisis

    east_sev = scenario.country_severities(east)
    assert east_sev.get("GH", 0.0) < 0.05  # different corridor


def test_sec51_correlation_statistics(benchmark, topo, phys):
    simulation = benchmark(
        lambda: OutageSimulator(topo, phys).simulate(years=10.0))
    report = analyze_correlation(simulation)
    emit(f"§5.1 over 10 simulated years: {report.cable_events} cable "
         f"events, {report.multi_cable_share():.0%} multi-cable "
         f"(mean {report.mean_cables_per_event:.1f} cables/event); "
         f"backups oversubscribed in "
         f"{report.oversubscription_rate():.0%} of activations")
    assert report.multi_cable_share() > 0.25
    assert report.mean_cables_per_event > 1.2
    assert report.oversubscription_rate() > 0.3
