"""§6.2 — Nautilus-style passive cable inference is too ambiguous.

Paper: >40% of network paths map to more than one submarine cable,
sometimes up to ~40 — insufficient precision for regulatory use.  The
implication benchmarked alongside: active measurements (maintenance-
window differentials) pin links to single systems.
"""

from conftest import emit

from repro.analysis import analyze_nautilus
from repro.observatory import CableDisambiguationCampaign
from repro.reporting import ascii_table


def test_sec62_nautilus_ambiguity(benchmark, topo, phys, snapshot, geo):
    report = benchmark(analyze_nautilus, topo, phys, snapshot, geo, 8.0)
    oracle = analyze_nautilus(topo, phys, snapshot, None, 8.0)
    rows = [
        ["passive + geolocation errors",
         f"{report.multi_cable_share():.0%}",
         f"{report.mean_candidates():.1f}", report.max_candidates(),
         f"{report.recall():.0%}"],
        ["passive, perfect geolocation",
         f"{oracle.multi_cable_share():.0%}",
         f"{oracle.mean_candidates():.1f}", oracle.max_candidates(),
         f"{oracle.recall():.0%}"],
    ]
    emit(ascii_table(
        ["inference mode", "paths mapped to >1 cable", "mean candidates",
         "max candidates", "recall"],
        rows,
        title="§6.2 cable-inference ambiguity "
              "(paper: >40% multi-mapped, up to ~40 cables)"))
    assert report.multi_cable_share() > 0.4
    assert report.max_candidates() >= 8


def test_sec62_active_disambiguation(benchmark, topo, phys):
    campaign = CableDisambiguationCampaign(topo, phys)
    pairs = [("GH", "PT"), ("KE", "DJ"), ("NG", "PT"), ("ZA", "MZ"),
             ("SN", "PT"), ("TZ", "KE")]
    correct = 0
    total_candidates = 0
    resolved = 0
    candidate_sets = benchmark(
        lambda: {p: phys.candidate_cables(*p, slack_ms=8.0)
                 for p in pairs})
    for cc_a, cc_b in pairs:
        candidates = candidate_sets[(cc_a, cc_b)]
        if not candidates:
            continue
        result = campaign.disambiguate(cc_a, cc_b, candidates)
        total_candidates += result.passive_candidates
        resolved += 1
        correct += result.correct
    emit(f"§6.2 implication: active maintenance-window measurement "
         f"resolved {correct}/{resolved} wet links to the correct "
         f"single cable (passive offered "
         f"{total_candidates / max(1, resolved):.1f} candidates each)")
    assert correct >= resolved - 1  # active measurement disambiguates
