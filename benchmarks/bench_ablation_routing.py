"""Ablation — valley-free policy routing vs geographic shortest paths.

DESIGN.md choice 1: the paper's detours are a *policy* phenomenon.  If
routing followed shortest AS paths irrespective of business
relationships, intra-African traffic would appear far more local and
the motivation would vanish — quantified here.
"""

import itertools
import random

import networkx as nx
from conftest import emit

from repro.routing import as_path_geography, countries_on_path
from repro.geo import country
from repro.reporting import ascii_table, pct


def _as_graph(topo):
    graph = nx.Graph()
    for link in topo.links:
        graph.add_edge(link.a, link.b)
    return graph


def _pairs(atlas, n=250):
    african = [p for p in atlas.probes if p.region.is_african]
    rng = random.Random(17)
    pairs = [(a.asn, b.asn)
             for a, b in itertools.permutations(african, 2)
             if a.asn != b.asn]
    return rng.sample(pairs, min(n, len(pairs)))


def _policy_detour_rate(topo, routing, pairs):
    detoured = total = 0
    for src, dst in pairs:
        sites = as_path_geography(topo, routing, src, dst)
        if sites is None:
            continue
        total += 1
        detoured += any(not country(cc).is_african
                        for cc in countries_on_path(sites))
    return detoured / total


def _shortest_detour_rate(topo, graph, pairs):
    detoured = total = 0
    for src, dst in pairs:
        try:
            path = nx.shortest_path(graph, src, dst)
        except nx.NetworkXNoPath:
            continue
        total += 1
        detoured += any(not topo.as_(asn).is_african for asn in path)
    return detoured / total


def test_ablation_policy_vs_shortest(benchmark, topo, routing, atlas):
    pairs = _pairs(atlas)
    graph = _as_graph(topo)
    policy = benchmark(_policy_detour_rate, topo, routing, pairs)
    shortest = _shortest_detour_rate(topo, graph, pairs)
    emit(ascii_table(
        ["routing model", "intra-African AS-path detour rate"],
        [["valley-free policy routing (paper's reality)", pct(policy)],
         ["geographic shortest AS path (counterfactual)",
          pct(shortest)]],
        title="Ablation: policy routing adds detours on top of an "
              "already EU-centric topology"))
    emit(f"Policy premium: {pct(policy - shortest)} extra detours from "
         "Gao-Rexford economics alone; the rest is structural "
         "(EU-homed transit) and only infrastructure can remove it.")
    assert policy >= shortest
