"""Ablation — corridor-correlated vs independent cable failures.

DESIGN.md choice 2: with independent failures, legislated backups look
fine; correlation (co-located cables failing together, §5.1) is what
breaks them.  We compare the severity distribution of multi-cable
corridor events against an equal number of independent single-cable
faults.
"""

import random
import statistics

from conftest import emit

from repro.outages import draw_corridor_incident
from repro.reporting import ascii_table
from repro.topology import CableCorridor


def _corridor_severities(topo, phys, rng, rounds=60):
    out = []
    for _ in range(rounds):
        incident = draw_corridor_incident(
            topo, CableCorridor.WEST_AFRICA, rng, cut_prob=0.72)
        if incident is None:
            continue
        for cc in ("GH", "CI", "NG", "SN"):
            before = phys.international_traffic_weight(cc)
            after = phys.international_traffic_weight(
                cc, down_cables=incident.cut_cable_ids)
            if before > 0:
                out.append(1.0 - after / before)
    return out


def _independent_severities(topo, phys, rng, rounds=60):
    west_cables = [c.cable_id for c in topo.cables
                   if c.corridor is CableCorridor.WEST_AFRICA]
    out = []
    for _ in range(rounds):
        cut = (rng.choice(west_cables),)
        for cc in ("GH", "CI", "NG", "SN"):
            before = phys.international_traffic_weight(cc)
            after = phys.international_traffic_weight(cc,
                                                      down_cables=cut)
            if before > 0:
                out.append(1.0 - after / before)
    return out


def test_ablation_correlated_failures(benchmark, topo, phys):
    rng = random.Random(23)
    correlated = benchmark(_corridor_severities, topo, phys,
                           random.Random(23))
    independent = _independent_severities(topo, phys, random.Random(24))
    rows = [
        ["corridor-correlated (reality)",
         f"{statistics.mean(correlated):.2f}",
         f"{statistics.quantiles(correlated, n=10)[8]:.2f}",
         f"{sum(s > 0.4 for s in correlated) / len(correlated):.0%}"],
        ["independent faults (counterfactual)",
         f"{statistics.mean(independent):.2f}",
         f"{statistics.quantiles(independent, n=10)[8]:.2f}",
         f"{sum(s > 0.4 for s in independent) / len(independent):.0%}"],
    ]
    emit(ascii_table(
        ["failure model", "mean severity", "p90 severity",
         "events losing >40% capacity"],
        rows,
        title="Ablation: correlation is what defeats redundancy (§5.1)"))
    assert statistics.mean(correlated) > statistics.mean(independent)
