"""Ablation — lit-traffic severity vs installed-capacity max flow.

Regulators reading capacity maps (installed Tbps) see far smaller
cable-cut impact than users experience, because new giant systems are
barely lit while legacy corridor cables carry the actual traffic.  The
outage engine's lit-traffic weighting is validated against the
principled max-flow computation here.
"""

from conftest import emit

from repro.observatory import WhatIfCutCables
from repro.outages import march_2024_scenario
from repro.routing import FlowAnalyzer
from repro.reporting import ascii_table


def test_ablation_severity_models(benchmark, topo, phys):
    west, _ = march_2024_scenario(topo)
    flows = FlowAnalyzer(topo, phys)
    lit = WhatIfCutCables(topo).country_severities(west)
    flow_sev = benchmark(
        lambda: {cc: flows.flow_severity(cc, west)
                 for cc in ("GH", "CI", "NG", "SN", "CM")})
    rows = []
    for cc in ("GH", "CI", "NG", "SN", "CM"):
        rows.append([cc, f"{lit.get(cc, 0.0):.0%}",
                     f"{flow_sev[cc]:.0%}"])
    emit(ascii_table(
        ["country", "lit-traffic severity (what users feel)",
         "installed-capacity max-flow severity (what maps show)"],
        rows,
        title="Ablation: installed capacity understates cable-cut "
              "impact (§5.1)"))
    # Both agree on *who* is affected...
    for cc in ("GH", "CI", "NG"):
        assert (lit.get(cc, 0.0) > 0.05) == (flow_sev[cc] > 0.02)
    # ...but the installed-capacity view is systematically milder.
    assert sum(flow_sev.values()) < sum(
        lit.get(cc, 0.0) for cc in flow_sev)
