"""§7.3 + footnote 1 — purpose-driven probe placement.

Paper: a greedy set cover over peering data finds ~34 ASNs covering all
77 African IXPs, and the Kigali probe on AS36924 detected 14 additional
IXPs compared to RIPE-Atlas approaches.
"""

from conftest import emit

from repro.observatory import (
    compare_ixp_coverage,
    ixp_cover_hosts,
    kigali_comparison,
)
from repro.datasets import build_ixp_directory
from repro.reporting import ascii_table


def test_sec73_set_cover(benchmark, topo, atlas):
    cover = benchmark(ixp_cover_hosts, topo)
    comparison = compare_ixp_coverage(topo, atlas)
    emit(ascii_table(
        ["placement", "host ASNs", "IXPs covered"],
        [["greedy set cover (Observatory)", comparison.observatory_hosts,
          f"{comparison.observatory_covered}/{comparison.universe}"],
         ["volunteer hosting (Atlas-like)", comparison.atlas_hosts,
          f"{comparison.atlas_covered}/{comparison.universe}"]],
        title="Footnote 1: ASNs needed to cover all 77 African IXPs "
              "(paper: 34)"))
    assert cover.complete
    assert 20 <= len(cover.chosen) <= 50
    assert comparison.atlas_covered < comparison.observatory_covered
    half = cover.picks_needed(0.5)
    emit(f"Coverage curve: 50% of IXPs covered after {half} picks, "
         f"100% after {len(cover.chosen)}")


def test_sec73_kigali_vantage(benchmark, topo, engine, atlas):
    complete = build_ixp_directory(topo, complete=True)
    obs, ref = benchmark(kigali_comparison, topo, engine, complete,
                         atlas)
    emit(f"§7.3 Kigali experiment: Observatory probe on AS36924 "
         f"detected {obs.detected_count()} African IXPs vs "
         f"{ref.detected_count()} for Atlas builtins from the same "
         f"country — {obs.detected_count() - ref.detected_count()} "
         f"additional (paper: 14 additional)")
    assert obs.detected_count() > ref.detected_count()
