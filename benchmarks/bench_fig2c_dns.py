"""Fig. 2c — local DNS resolver use across Africa.

Paper: many regions rely heavily on resolvers in other countries and on
cloud resolvers, and African cloud-resolver traffic is served almost
entirely from South Africa (§5.2).
"""

from conftest import emit

from repro.analysis import analyze_dns_locality
from repro.datasets import build_resolver_usage
from repro.geo import Region
from repro.reporting import ascii_table, pct


def test_fig2c_dns_locality(benchmark, topo):
    records = build_resolver_usage(topo)
    report = benchmark(analyze_dns_locality, records)
    rows = []
    for row in report.rows:
        rows.append([row.region.value, row.countries,
                     pct(row.local_share), pct(row.other_african_share),
                     pct(row.cloud_share), pct(row.foreign_share),
                     pct(row.cloud_from_za_share)])
    emit(ascii_table(
        ["region", "countries", "local", "other African country",
         "cloud", "outside Africa", "cloud via ZA"],
        rows,
        title="Fig.2c resolver locality "
              "(paper: heavy remote/cloud reliance, clouds in ZA)"))
    assert report.african_nonlocal_share() > 0.3
    for row in report.rows:
        if row.region.is_african and row.cloud_share > 0:
            assert row.cloud_from_za_share > 0.8
    eu = report.row_for(Region.EUROPE)
    assert eu.local_share > max(
        r.local_share for r in report.rows
        if r.region in (Region.WESTERN_AFRICA, Region.CENTRAL_AFRICA))
