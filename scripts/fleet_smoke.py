#!/usr/bin/env python
"""Fleet smoke test: distributed campaign under injected agent death.

The distributed observatory's contract, exercised end to end with real
processes:

1. start a coordinator (TCP RPC, short heartbeat/lease timeouts);
2. spawn three ``repro agent`` subprocesses, one of them carrying
   ``REPRO_FAULTS="fleet.agent_crash=1x1"`` so it hard-exits (status
   37) on the first unit it leases;
3. dispatch a campaign and require that it completes anyway — the
   crashed agent's leases must expire and be reassigned to survivors;
4. require the merged artifact's digest to be byte-identical to a
   single-process serial run of the same spec;
5. require every agent subprocess to be reaped (no orphans) and the
   crashed one to have exited with the injected status.

Exit 0 on success; non-zero with a diagnostic on any violation.
Used by the ``fleet-smoke`` CI job; runnable locally on any machine
(no minimum core count — this validates correctness, not speedup).
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro import faults  # noqa: E402
from repro.fleet import (  # noqa: E402
    CampaignSpec,
    CoordinatorServer,
    FleetCoordinator,
    merged_digest,
    run_campaign_serial,
)

SPEC = CampaignSpec(seed=2025, scale=0.1, rounds=2, shards=4,
                    probes_per_shard=4, targets_per_probe=4)
AGENTS = 3
CRASH_SPEC = "fleet.agent_crash=1x1"
TIMEOUT_S = 240.0


def fail(message: str) -> int:
    print(f"FLEET SMOKE FAILED: {message}", file=sys.stderr)
    return 1


def main() -> int:
    print(f"spec: {SPEC.to_dict()}")
    print("serial oracle ...", flush=True)
    t0 = time.perf_counter()
    oracle = merged_digest(run_campaign_serial(SPEC))
    print(f"  digest {oracle[:16]} in {time.perf_counter() - t0:.1f}s")

    coordinator = FleetCoordinator(heartbeat_timeout_s=3.0,
                                   lease_timeout_s=5.0)
    server = CoordinatorServer(coordinator).start()
    host, port = server.address
    campaign_id = coordinator.submit_campaign(SPEC)
    print(f"coordinator on {host}:{port}, campaign {campaign_id}")

    env = dict(os.environ)
    env["PYTHONPATH"] = str(
        pathlib.Path(__file__).resolve().parents[1] / "src")
    procs: list[subprocess.Popen] = []
    try:
        for i in range(AGENTS):
            agent_env = dict(env)
            if i == 0:
                agent_env["REPRO_FAULTS"] = CRASH_SPEC
            procs.append(subprocess.Popen(
                [sys.executable, "-m", "repro", "agent",
                 "--connect", f"{host}:{port}",
                 "--agent-id", f"smoke-{i}",
                 # Idle budget (200 x 0.05s = 10s) must outlive the
                 # heartbeat timeout, or survivors would exit during
                 # the window where a dead agent's lease is pending
                 # reassignment.
                 "--poll", "0.05", "--exit-when-idle", "200"],
                env=agent_env, stdout=subprocess.DEVNULL))
        print(f"spawned {AGENTS} agents (smoke-0 crash-injected: "
              f"{CRASH_SPEC})", flush=True)

        merged = coordinator.wait(campaign_id, timeout=TIMEOUT_S)
        if merged is None:
            return fail(f"campaign did not finish in {TIMEOUT_S:.0f}s "
                        f"(reassignment after agent death broken?)")
        digest = merged_digest(merged)
        print(f"campaign merged: digest {digest[:16]}, "
              f"{merged['totals']['measurements']} measurements")
        if digest != oracle:
            return fail(f"merged digest {digest} != serial oracle "
                        f"{oracle}")

        coordinator.drain()
        deadline = time.monotonic() + 30.0
        statuses = []
        for proc in procs:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                statuses.append(proc.wait(timeout=remaining))
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
                return fail(f"agent pid {proc.pid} did not exit after "
                            f"drain (orphaned process)")
        print(f"agent exit statuses: {statuses}")
        if statuses[0] != faults.CRASH_EXIT_CODE:
            return fail(f"crash-injected agent exited {statuses[0]}, "
                        f"expected {faults.CRASH_EXIT_CODE}")
        if any(code != 0 for code in statuses[1:]):
            return fail(f"surviving agents exited {statuses[1:]}, "
                        f"expected all 0")

        status = coordinator.status()
        states = {a["agent_id"]: a["state"] for a in status["agents"]}
        done = sum(a["units_done"] for a in status["agents"])
        print(f"agent states: {states}; units credited: {done}")
        if states.get("smoke-0") != "lost":
            return fail(f"crashed agent state is "
                        f"{states.get('smoke-0')!r}, expected 'lost'")
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        server.stop()
    print("FLEET SMOKE OK: campaign survived an agent crash with a "
          "byte-identical merged artifact and no orphaned processes")
    return 0


if __name__ == "__main__":
    sys.exit(main())
