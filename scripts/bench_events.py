#!/usr/bin/env python
"""Always-on observatory benchmark: event log + heartbeat detector.

Four gated measurements, written to ``benchmarks/BENCH_events.json``:

* **append throughput** — synthetic framed batches through
  :class:`EventLog` with per-batch fsync (the durability contract the
  heartbeat loop actually pays for), gated by ``--min-append-eps``.
* **detector lag** — the streaming :class:`HeartbeatAnalyzer` runs
  inside the observatory loop; the p95 per-tick catch-up latency must
  stay under ``--max-p95-catchup-ms`` (an always-on detector that
  falls behind its own stream is batch analytics in disguise).
* **determinism** — two pinned-seed observatory runs must produce
  byte-identical log directories (tree digest) and identical alert
  sets.
* **fault tolerance** — the same run under aggressive injected write
  failures and torn writes (``eventlog.*`` fault sites) must converge
  to *content-identical* events and the identical alert set: nothing
  fsynced is lost, nothing is duplicated, and every injected outage
  that touches a probed country above the severity floor still raises
  its alert.

Usage::

    python scripts/bench_events.py
    python scripts/bench_events.py --days 6 --min-append-eps 20000
"""

from __future__ import annotations

import argparse
import hashlib
import json
import pathlib
import shutil
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro import build_world, faults  # noqa: E402
from repro.eventlog import EventLog, EventType, make_event  # noqa: E402
from repro.faults import FaultInjected  # noqa: E402
from repro.measurement import build_atlas_platform  # noqa: E402
from repro.monitoring import HeartbeatAnalyzer, ObservatoryStream  # noqa: E402
from repro.outages import OutageSimulator  # noqa: E402

OUT_PATH = pathlib.Path(__file__).resolve().parents[1] / \
    "benchmarks" / "BENCH_events.json"
SEED = 2025
FAULT_SPEC = "seed=3,eventlog.write_error=0.1,eventlog.torn_write=0.1"
#: Outages below this severity in a probed country are allowed to slip
#: under the detector's anomaly threshold.  On the default seed both
#: 10-day outages (CD at 0.20, LY at 0.41) clear this floor, so the
#: coverage gate is binding, not vacuous.
SEVERITY_FLOOR = 0.15


def _tree_digest(root: pathlib.Path) -> str:
    h = hashlib.sha256()
    for p in sorted(root.rglob("*")):
        if p.is_file():
            h.update(str(p.relative_to(root)).encode())
            h.update(p.read_bytes())
    return h.hexdigest()


# ----------------------------------------------------------------------
# Part 1: raw append/read throughput
# ----------------------------------------------------------------------
def bench_append(n_events: int = 20000, batch: int = 256) -> dict:
    root = pathlib.Path(tempfile.mkdtemp(prefix="bench-events-"))
    try:
        log = EventLog(root / "log", segment_events=4096)
        batches = [
            [make_event(0.25 * (b * batch + i) / batch, EventType.PING,
                        "NG", a=i, b=4, value=20.0 + i % 7)
             for i in range(batch)]
            for b in range(n_events // batch)]
        start = time.perf_counter()
        for events in batches:
            log.append(events)
        append_s = time.perf_counter() - start
        appended = sum(len(b) for b in batches)

        start = time.perf_counter()
        read_back = len(log.read())
        read_s = time.perf_counter() - start
        log.close()
        assert read_back == appended
        return {
            "events": appended,
            "batch": batch,
            "fsync": True,
            "append_s": round(append_s, 4),
            "append_eps": round(appended / append_s),
            "read_s": round(read_s, 4),
            "read_eps": round(appended / max(read_s, 1e-9)),
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


# ----------------------------------------------------------------------
# Part 2/3/4: the observatory loop (clean twice, then faulted)
# ----------------------------------------------------------------------
def _run_observatory(root: pathlib.Path, days: int,
                     world) -> dict:
    """One full writer+detector run; mirrors ``repro heartbeat``."""
    topo, platform, simulation = world
    log = EventLog(root, segment_events=4096)
    stream = ObservatoryStream(topo, platform, simulation, seed=SEED)
    analyzer = HeartbeatAnalyzer(log)
    recoveries = 0
    catchup_s: list[float] = []

    def supervised(op) -> None:
        nonlocal recoveries
        for _attempt in range(8):
            try:
                op()
                return
            except (FaultInjected, OSError):
                recoveries += 1
                log.recover()
        raise RuntimeError("append kept failing after 8 recoveries")

    for day, hour in stream.ticks(days):
        tick = stream.tick_events(day, hour)
        supervised(lambda: log.append(tick))
        start = time.perf_counter()
        supervised(analyzer.catch_up)
        catchup_s.append(time.perf_counter() - start)
    supervised(analyzer.finish)
    log.seal()

    events = log.read()
    content = hashlib.sha256()
    for e in events:
        content.update(repr((e.ts, int(e.etype), e.scope, e.a, e.b,
                             e.value, e.ok)).encode())
    outages = {e.scope: e.value for e in events
               if e.etype is EventType.OUTAGE_BEGIN}
    log.close()
    return {
        "events": len(events),
        "content_digest": content.hexdigest(),
        "tree_digest": _tree_digest(root),
        "alerts": sorted((a.scope, a.kind.wire_name, a.raised_bucket,
                          round(a.severity, 6)) for a in analyzer.alerts),
        "outage_scopes": outages,
        "probed_countries": list(stream.countries),
        "recoveries": recoveries,
        "catchup_s": catchup_s,
    }


def _p95(samples: list[float]) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]


def bench_observatory(days: int) -> dict:
    topo = build_world(seed=SEED)
    world = (topo, build_atlas_platform(topo),
             OutageSimulator(topo).simulate(years=days / 365.0 + 0.05))
    root = pathlib.Path(tempfile.mkdtemp(prefix="bench-observatory-"))
    try:
        start = time.perf_counter()
        first = _run_observatory(root / "run1", days, world)
        run_s = time.perf_counter() - start
        second = _run_observatory(root / "run2", days, world)
        faults.configure(FAULT_SPEC)
        try:
            faulted = _run_observatory(root / "faulted", days, world)
        finally:
            faults.configure(None)

        lag = first["catchup_s"]
        measurable = sorted(
            cc for cc, severity in first["outage_scopes"].items()
            if cc in first["probed_countries"]
            and severity >= SEVERITY_FLOOR)
        alerted = {scope for scope, _kind, _b, _s in first["alerts"]}
        return {
            "days": days,
            "events": first["events"],
            "run_s": round(run_s, 2),
            "ticks": len(lag),
            "catchup_p95_ms": round(_p95(lag) * 1000.0, 3),
            "catchup_max_ms": round(max(lag) * 1000.0, 3),
            "byte_identical": first["tree_digest"]
            == second["tree_digest"],
            "alerts": first["alerts"],
            "alerts_identical": first["alerts"] == second["alerts"],
            "measurable_outages": measurable,
            "outages_alerted": all(cc in alerted for cc in measurable),
            "faulted": {
                "recoveries": faulted["recoveries"],
                "events": faulted["events"],
                "content_identical": faulted["content_digest"]
                == first["content_digest"],
                "alerts_identical": faulted["alerts"]
                == first["alerts"],
            },
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=int, default=10,
                        help="simulated days per observatory run")
    parser.add_argument("--min-append-eps", type=float, default=20000,
                        help="fail below this fsynced append rate")
    parser.add_argument("--max-p95-catchup-ms", type=float, default=250,
                        help="fail above this p95 detector latency")
    parser.add_argument("--out", type=pathlib.Path, default=OUT_PATH)
    args = parser.parse_args()

    append = bench_append()
    print(f"append: {append['events']} events in {append['append_s']}s "
          f"-> {append['append_eps']} ev/s fsynced "
          f"(read-back {append['read_eps']} ev/s)")
    observatory = bench_observatory(args.days)
    print(f"observatory: {observatory['events']} events over "
          f"{observatory['days']} days, detector p95 "
          f"{observatory['catchup_p95_ms']}ms, "
          f"byte-identical={observatory['byte_identical']}, "
          f"faulted recoveries="
          f"{observatory['faulted']['recoveries']}")

    report = {"seed": SEED, "fault_spec": FAULT_SPEC,
              "append": append, "observatory": observatory}
    args.out.write_text(json.dumps(report, indent=2, sort_keys=True)
                        + "\n")
    print(f"wrote {args.out}")

    failures = []
    if append["append_eps"] < args.min_append_eps:
        failures.append(f"append {append['append_eps']} ev/s below "
                        f"required {args.min_append_eps}")
    if observatory["catchup_p95_ms"] > args.max_p95_catchup_ms:
        failures.append(
            f"detector p95 {observatory['catchup_p95_ms']}ms above "
            f"ceiling {args.max_p95_catchup_ms}ms")
    if not observatory["byte_identical"]:
        failures.append("pinned-seed runs are not byte-identical")
    if not observatory["alerts_identical"]:
        failures.append("pinned-seed runs raised different alerts")
    if not observatory["outages_alerted"]:
        failures.append(
            f"measurable outages missed: "
            f"{observatory['measurable_outages']} vs "
            f"{observatory['alerts']}")
    faulted = observatory["faulted"]
    if not faulted["recoveries"]:
        failures.append("fault arm injected nothing (spec inert?)")
    if not faulted["content_identical"]:
        failures.append("fault arm lost or duplicated events")
    if not faulted["alerts_identical"]:
        failures.append("fault arm raised different alerts")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
