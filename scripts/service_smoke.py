#!/usr/bin/env python
"""End-to-end smoke test of the Observatory service, as CI runs it.

Boots ``repro serve`` as a real subprocess against a throwaway store,
then drives the cold-miss → warm-hit contract over HTTP:

1. ``GET /healthz`` until the server answers;
2. a cold expensive request (``wait=1``) — must report ``X-Repro-Cache:
   miss``;
3. the same request again — must report ``hit`` and return the exact
   same bytes;
4. ``GET /metrics`` — must show at least one recorded store hit;
5. after shutdown, ``repro store verify`` over the same store dir —
   every artifact must pass its integrity check (and ``store ls`` must
   list the artifact we created).

Exit status 0 only if every step holds.  Usage::

    python scripts/service_smoke.py [--endpoint coverage] [--seed 2025]
        [--async]

``--async`` boots the asyncio transport (``repro serve --async``);
the contract under test is transport-independent, so CI runs both.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

REPO = pathlib.Path(__file__).resolve().parents[1]
SEED = 2025

REQUESTS = {
    "coverage": "/v1/coverage?seed={seed}&wait=1",
    "detours": "/v1/detours?seed={seed}&pairs=200&wait=1",
    "outages": "/v1/outages?seed={seed}&years=1.0&wait=1",
}


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return env


def _get(url: str) -> tuple[int, dict, bytes]:
    with urllib.request.urlopen(url, timeout=600) as resp:
        return resp.status, dict(resp.headers), resp.read()


def _fail(message: str) -> int:
    print(f"SMOKE FAIL: {message}", file=sys.stderr)
    return 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--endpoint", choices=sorted(REQUESTS),
                        default="coverage")
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument("--async", dest="async_server",
                        action="store_true",
                        help="boot the asyncio transport")
    args = parser.parse_args(argv)

    store_dir = tempfile.mkdtemp(prefix="repro-smoke-store-")
    cmd = [sys.executable, "-m", "repro", "serve", "--port", "0",
           "--store-dir", store_dir, "--job-workers", "2"]
    if args.async_server:
        cmd.append("--async")
    server = subprocess.Popen(
        cmd, stdout=subprocess.PIPE, text=True, env=_env())
    try:
        banner = server.stdout.readline()
        match = re.search(r"http://([\d.]+):(\d+)", banner)
        if not match:
            return _fail(f"could not parse server banner: {banner!r}")
        base = f"http://{match.group(1)}:{match.group(2)}"
        print(f"server up at {base} (store: {store_dir})")

        deadline = time.time() + 30
        while True:
            try:
                status, _, _ = _get(base + "/healthz")
                if status == 200:
                    break
            except (urllib.error.URLError, ConnectionError):
                pass
            if time.time() > deadline:
                return _fail("server never became healthy")
            time.sleep(0.2)

        path = REQUESTS[args.endpoint].format(seed=args.seed)
        status, cold_headers, cold_body = _get(base + path)
        print(f"cold: {status} cache={cold_headers.get('X-Repro-Cache')} "
              f"({len(cold_body)} bytes)")
        if status != 200 or cold_headers.get("X-Repro-Cache") != "miss":
            return _fail("cold request must be a 200 cache miss")

        status, warm_headers, warm_body = _get(base + path)
        print(f"warm: {status} cache={warm_headers.get('X-Repro-Cache')}")
        if status != 200 or warm_headers.get("X-Repro-Cache") != "hit":
            return _fail("warm request must be a 200 cache hit")
        if warm_body != cold_body:
            return _fail("cold and warm payloads differ")
        print("payloads byte-identical")

        _, _, metrics = _get(base + "/metrics")
        hit_lines = [l for l in metrics.decode().splitlines()
                     if l.startswith("repro_store_hits_total")
                     and not l.startswith("#")]
        if not any(float(l.rsplit(" ", 1)[1]) >= 1 for l in hit_lines):
            return _fail("metrics do not record a store hit")
        print("metrics record the store hit")
    finally:
        server.send_signal(signal.SIGINT)
        try:
            server.wait(timeout=15)
        except subprocess.TimeoutExpired:
            server.kill()

    ls = subprocess.run(
        [sys.executable, "-m", "repro", "store", "ls",
         "--store-dir", store_dir],
        capture_output=True, text=True, env=_env())
    print(ls.stdout.rstrip())
    if ls.returncode != 0 or f"api.{args.endpoint}" not in ls.stdout:
        return _fail("store ls does not list the cached artifact")

    verify = subprocess.run(
        [sys.executable, "-m", "repro", "store", "verify",
         "--store-dir", store_dir],
        capture_output=True, text=True, env=_env())
    print(verify.stdout.rstrip())
    if verify.returncode != 0:
        return _fail("store verify reported problems")

    print("SMOKE OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
