"""One-shot calibration dashboard: every headline number vs the paper."""
import sys
from repro import build_world, WorldParams
from repro.routing import BGPRouting, PhysicalNetwork
from repro.measurement import (MeasurementEngine, build_atlas_platform,
                               GeolocationService, run_ant_hitlist,
                               run_caida_prefix_scan, run_yarrp_scan)
from repro.datasets import *
from repro.analysis import *
from repro.outages import OutageSimulator, DETECTION_THRESHOLD, OutageCause
from repro.observatory.placement import ixp_cover_hosts, compare_ixp_coverage
from repro.geo import Region, country

seed = int(sys.argv[1]) if len(sys.argv) > 1 else 2025
t = build_world(params=WorldParams(seed=seed))
r = BGPRouting(t); phys = PhysicalNetwork(t)
eng = MeasurementEngine(t, r, phys)
atlas = build_atlas_platform(t)
snap = collect_snapshot(t, eng, atlas, max_pairs=2000)
geo = GeolocationService(t); directory = build_ixp_directory(t)

rep = analyze_snapshot(t, snap, geo, directory)
print('== Fig2a/Fig3 ==')
print('detour %.2f (regional var expected) | attribution %.2f (paper ~0.40) | ixp %.2f (paper ~0.10)'
      % (rep.detour_rate(), rep.attribution_share(), rep.ixp_traversal_rate()))
for reg in Region:
    if reg.is_african:
        print('  %-16s n=%-4d det %.2f ixp %.2f' % (reg.value, rep.sample_count(reg), rep.detour_rate(reg), rep.ixp_traversal_rate(reg)))

content = analyze_content_locality(run_pulse_study(t))
print('== Fig2b == overall %.2f (paper 0.30); S>E>...>W ordering:' % content.overall_africa_share(),
      {row.region.value.split()[0]: round(row.africa_local_share,2) for row in content.rows})

dnsrep = analyze_dns_locality(build_resolver_usage(t))
print('== Fig2c ==', {row.region.value.split()[0]: round(row.local_share,2) for row in dnsrep.rows if row.region.is_african},
      'cloudZA %.2f' % max(r.cloud_from_za_share for r in dnsrep.rows if r.region.is_african))

sim = OutageSimulator(t, phys); res = sim.simulate(2.0)
feed = build_radar_feed(res, seed=seed)
imp = analyze_outages(res, feed)
print('== Fig4 == ratio %.1f (paper 4x) | cable-hit countries %d (paper ~30) | longest cause: %s'
      % (imp.rate_ratio(), len(res.countries_hit_by_cable_cuts()), imp.longest_cause()))

delegated = build_delegated_file(t)
scans = [run_ant_hitlist(t), run_caida_prefix_scan(t), run_yarrp_scan(t, r)]
table = build_coverage_table(t, delegated, scans)
print('== Table1 (paper: ANT 96/71.4/23.5, CAIDA 64.4/35.4/7.8, YARRP 56.1/27.2/2.9) ==')
for row in table.rows:
    print('  %-18s entries %-6d mob %.1f%% non %.1f%% ixp %.1f%%' % (
        row.dataset, row.entries, 100*row.mobile_coverage, 100*row.non_mobile_coverage, 100*row.ixp_coverage))

naut = analyze_nautilus(t, phys, snap, geo, slack_ms=8.0)
print('== 6.2 == multi %.2f (paper >0.40) max %d (paper ~40) mean %.1f' % (naut.multi_cable_share(), naut.max_candidates(), naut.mean_candidates()))

cover = ixp_cover_hosts(t)
cmp = compare_ixp_coverage(t, atlas)
print('== 7.3 == setcover %d ASNs for %d/77 (paper 34/77) | atlas %d hosts -> %d IXPs' % (
    len(cover.chosen), len(cover.covered), cmp.atlas_hosts, cmp.atlas_covered))

g = analyze_growth(t).africa()
print('== Fig1 == ixp %+.0f%% (paper +600) cable %+.0f%% (paper +45) asn %+.0f%%' % (g.ixp_growth_pct, g.cable_growth_pct, g.asn_growth_pct))
