#!/usr/bin/env python
"""Compiled-core vs reference routing benchmark (plus what-if deltas).

Two gated measurements, written to ``benchmarks/BENCH_routing.json``:

* **full-table precompute** — every destination's routing table on the
  default world, computed by the retained pure-dict
  :class:`ReferenceRouting` oracle and by the compiled array engine
  (:class:`BGPRouting` over ``CompiledTopology`` CSR adjacency).  The
  two engines must produce identical entries on every pinned seed; the
  compiled engine must beat the reference by ``--require-speedup``.
* **what-if sweep** — ten ``WhatIfMandateLocalPeering`` scenarios, each
  answering "how do this country's locals reach global content?".  The
  pre-PR arm pays a full reference engine per scenario world; the
  incremental arm routes the same worlds through ``DeltaRouting`` over
  one warm baseline, recomputing only each edit's dirty cone.  Paths
  must be byte-identical; the sweep must also clear
  ``--require-speedup``.

Both gates are algorithmic (single process, no parallelism), so they
hold on single-core CI machines.  Also records the per-table memory
footprint of dict-of-dataclass vs flat-array representations — the
numbers quoted in docs/performance.md.

Usage::

    python scripts/bench_routing.py
    python scripts/bench_routing.py --require-speedup 3
"""

from __future__ import annotations

import argparse
import hashlib
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro import build_world  # noqa: E402
from repro.observatory import WhatIfMandateLocalPeering  # noqa: E402
from repro.routing import (  # noqa: E402
    BGPRouting,
    DeltaRouting,
    ReferenceRouting,
)
from repro.topology import ASKind  # noqa: E402

OUT_PATH = pathlib.Path(__file__).resolve().parents[1] / \
    "benchmarks" / "BENCH_routing.json"
SEED = 2025
#: Worlds on which old and new engines must agree entry-for-entry.
IDENTITY_SEEDS = (2025, 11, 99)
N_SCENARIOS = 10
N_CONTENT_DESTS = 30


def _fingerprint(items) -> str:
    h = hashlib.sha256()
    for item in items:
        h.update(repr(item).encode())
    return h.hexdigest()


def _table_items(engine, dests):
    """Canonical (dst, asn, entry-tuple) stream for fingerprinting."""
    for dst in dests:
        table = engine.routes_to(dst)
        for asn in sorted(table):
            e = table[asn]
            yield dst, asn, (int(e.kind), e.length, e.next_hop, e.via_ixp)


# ----------------------------------------------------------------------
# Part 1: full-table precompute, reference vs compiled
# ----------------------------------------------------------------------
def bench_full_tables() -> dict:
    topo = build_world(seed=SEED)
    dests = sorted(topo.ases)

    reference = ReferenceRouting(topo)
    start = time.perf_counter()
    for dst in dests:
        reference.routes_to(dst)
    reference_s = time.perf_counter() - start

    compiled = BGPRouting(topo)
    start = time.perf_counter()
    compiled.precompute(dests, workers=1)
    compiled_s = time.perf_counter() - start

    identical = {}
    for seed in IDENTITY_SEEDS:
        world = topo if seed == SEED else build_world(seed=seed)
        seed_dests = sorted(world.ases)
        old = reference if seed == SEED else ReferenceRouting(world)
        new = compiled if seed == SEED else BGPRouting(world)
        identical[str(seed)] = (
            _fingerprint(_table_items(old, seed_dests))
            == _fingerprint(_table_items(new, seed_dests)))

    return {
        "destinations": len(dests),
        "reference_s": round(reference_s, 4),
        "compiled_s": round(compiled_s, 4),
        "speedup": round(reference_s / compiled_s, 2),
        "identical_by_seed": identical,
        "memory": _memory_footprint(reference, compiled, dests[0]),
    }


def _memory_footprint(reference: ReferenceRouting,
                      compiled: BGPRouting, dst: int) -> dict:
    """Deep-ish per-table bytes: dict-of-dataclass vs flat arrays."""
    dict_table = reference.routes_to(dst)
    dict_bytes = sys.getsizeof(dict_table)
    for asn, entry in dict_table.items():
        dict_bytes += sys.getsizeof(asn) + sys.getsizeof(entry)
        dict_bytes += sys.getsizeof(getattr(entry, "__dict__", 0))
    array_table = compiled.routes_to(dst)
    array_bytes = sys.getsizeof(array_table)
    for column in (array_table.kind, array_table.length,
                   array_table.next_hop, array_table.via_ixp):
        array_bytes += sys.getsizeof(column)
    return {
        "dict_table_bytes": dict_bytes,
        "array_table_bytes": array_bytes,
        "shrink": round(dict_bytes / array_bytes, 1),
    }


# ----------------------------------------------------------------------
# Part 2: what-if sweep, full recompute vs DeltaRouting
# ----------------------------------------------------------------------
def _scenario_countries(topo) -> list[str]:
    seen: list[str] = []
    for ixp in sorted(topo.african_ixps(), key=lambda x: x.ixp_id):
        cc = ixp.country_iso2
        if cc not in seen and any(
                a.tier == 3 for a in topo.ases_in_country(cc)):
            seen.append(cc)
        if len(seen) == N_SCENARIOS:
            break
    return seen


def _content_dests(topo) -> list[int]:
    """Global destinations the locality analyses care about: every
    cloud/CDN AS, padded with tier-1 carriers up to the target count."""
    content = sorted(a.asn for a in topo.ases.values()
                     if a.kind in (ASKind.CLOUD, ASKind.CONTENT))
    tier1 = sorted(a.asn for a in topo.tier1_ases()
                   if a.asn not in set(content))
    return (content + tier1)[:N_CONTENT_DESTS]


def _workload(engine, topo, iso2: str, dests) -> list:
    """Paths from a country's tier-3 locals to global content ASes —
    the question every locality analysis asks of a scenario world."""
    locals_ = sorted(a.asn for a in topo.ases_in_country(iso2)
                     if a.tier == 3)
    rows = []
    for src in locals_:
        for dst in dests:
            path = engine.path(src, dst)
            rows.append((iso2, src, dst, tuple(path) if path else None))
    return rows


def bench_whatif_sweep() -> dict:
    topo = build_world(seed=SEED)
    countries = _scenario_countries(topo)
    dests = _content_dests(topo)
    worlds = [(cc, WhatIfMandateLocalPeering(topo).apply(cc))
              for cc in countries]

    # Pre-PR arm: a fresh full (dict) engine per scenario world.
    start = time.perf_counter()
    full_rows = []
    for cc, modified in worlds:
        engine = ReferenceRouting(modified)
        full_rows.extend(_workload(engine, modified, cc, dests))
    full_s = time.perf_counter() - start

    # Incremental arm: one warm compiled baseline, DeltaRouting per
    # scenario (warm-up time included — that is the real cost paid).
    start = time.perf_counter()
    baseline = BGPRouting(topo)
    baseline.precompute(dests, workers=1)
    delta_rows = []
    delta_engines = fallbacks = 0
    for cc, modified in worlds:
        engine = DeltaRouting.for_copy(baseline, modified)
        if engine is None:  # pragma: no cover - bench invariant
            engine = BGPRouting(modified)
            fallbacks += 1
        else:
            delta_engines += 1
        delta_rows.extend(_workload(engine, modified, cc, dests))
    delta_s = time.perf_counter() - start

    return {
        "scenarios": len(worlds),
        "countries": countries,
        "content_destinations": len(dests),
        "paths_resolved": len(full_rows),
        "full_s": round(full_s, 4),
        "delta_s": round(delta_s, 4),
        "speedup": round(full_s / delta_s, 2),
        "identical": _fingerprint(full_rows) == _fingerprint(delta_rows),
        "delta_engines": delta_engines,
        "full_fallbacks": fallbacks,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--require-speedup", type=float, default=None,
                        help="fail unless BOTH measured speedups "
                             "reach this factor")
    parser.add_argument("--out", type=pathlib.Path, default=OUT_PATH)
    args = parser.parse_args()

    full = bench_full_tables()
    print(f"full tables: reference {full['reference_s']}s, "
          f"compiled {full['compiled_s']}s -> {full['speedup']}x "
          f"({full['destinations']} destinations)")
    sweep = bench_whatif_sweep()
    print(f"what-if sweep: full {sweep['full_s']}s, "
          f"delta {sweep['delta_s']}s -> {sweep['speedup']}x "
          f"({sweep['scenarios']} scenarios, "
          f"{sweep['paths_resolved']} paths)")

    report = {
        "seed": SEED,
        "full_tables": full,
        "whatif_sweep": sweep,
    }
    args.out.write_text(json.dumps(report, indent=2, sort_keys=True)
                        + "\n")
    print(f"wrote {args.out}")

    failures = []
    if not all(full["identical_by_seed"].values()):
        failures.append(
            f"table mismatch: {full['identical_by_seed']}")
    if not sweep["identical"]:
        failures.append("what-if paths differ between arms")
    if sweep["full_fallbacks"]:
        failures.append(
            f"{sweep['full_fallbacks']} scenarios missed the delta path")
    if args.require_speedup is not None:
        for name, result in (("full-table", full), ("what-if", sweep)):
            if result["speedup"] < args.require_speedup:
                failures.append(
                    f"{name} speedup {result['speedup']}x below "
                    f"required {args.require_speedup}x")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
