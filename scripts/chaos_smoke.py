#!/usr/bin/env python
"""Chaos smoke test: the Observatory must survive an aggressive fault
spec end to end, as CI runs it.

Three stages:

1. **In-process determinism** — a parallel ``map_tasks`` batch under
   injected worker crashes must produce byte-identical results to the
   fault-free serial run (the core recovery contract).
2. **Shared-memory dispatch under chaos** — the zero-copy routing
   precompute must survive a worker crash *and* a hung-worker
   termination with byte-identical tables and zero leaked
   ``repro-shm-`` segments (scanned via ``/dev/shm``).
3. **Service under chaos** — boot ``repro serve`` as a subprocess with
   ``REPRO_FAULTS`` injecting a job stall, job compute errors, a
   corrupt store write and a worker crash, then hammer cheap and
   expensive endpoints:

   * every 5xx observed must carry ``X-Repro-Degraded`` (degraded mode
     is announced, never silent);
   * every endpoint must eventually return 200 once the injection
     budgets are spent;
   * ``/metrics`` must report ``repro_faults_injected_total``;
   * SIGTERM must drain and exit 0 within 10 seconds.

Exit status 0 only if every invariant holds.  Usage::

    python scripts/chaos_smoke.py [--seed 2025] [--async]

``--async`` boots stage 3 on the asyncio transport (``repro serve
--async``); the chaos invariants are transport-independent, so CI
runs both.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

REPO = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

SEED = 2025

#: The aggressive spec the service boots under (acceptance criteria:
#: a worker crash + a job stall + one corrupt store entry, plus a
#: couple of transient job errors for the retry path).
SERVE_FAULTS = ("seed=7,stall=3,jobs.stall=1x1,jobs.error=1x2,"
                "store.corrupt=1x1,exec.worker_crash=1x1")


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    env["REPRO_FAULTS"] = SERVE_FAULTS
    env["REPRO_TELEMETRY"] = "1"
    return env


def _get(url: str) -> tuple[int, dict, bytes]:
    request = urllib.request.Request(url)
    try:
        with urllib.request.urlopen(request, timeout=120) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as err:
        return err.code, dict(err.headers), err.read()


def _fail(message: str) -> int:
    print(f"CHAOS FAIL: {message}", file=sys.stderr)
    return 1


def _square_doc(x: int) -> dict:
    return {"x": x, "sq": x * x}


def stage_determinism() -> int:
    """Parallel recovery under worker crashes == fault-free serial."""
    from repro import faults
    from repro.store import canonical_bytes
    from repro.exec import fork_available, map_tasks

    if not fork_available():
        print("stage 1: skipped (platform has no fork)")
        return 0
    serial = map_tasks(_square_doc, list(range(64)), workers=1)
    faults.configure("seed=7,exec.worker_crash=1x1,exec.task_error=1x2")
    try:
        parallel = map_tasks(_square_doc, list(range(64)), workers=3,
                             timeout=60, retries=3)
    finally:
        faults.configure(None)
    if canonical_bytes(parallel) != canonical_bytes(serial):
        return _fail("recovered parallel batch differs from the "
                     "fault-free serial run")
    print("stage 1: crash-recovered parallel output byte-identical "
          "to fault-free serial run")
    return 0


def stage_shared_memory(seed: int) -> int:
    """Zero-copy precompute survives crash + hang with no leaks."""
    from repro import faults
    from repro.exec import fork_available, shm_supported
    from repro.exec.shm import active_segments, system_segments
    from repro.routing import BGPRouting
    from repro.topology import build_world

    if not fork_available() or not shm_supported():
        print("stage 2: skipped (no fork or no POSIX shared memory)")
        return 0

    def leaked() -> list[str]:
        visible = system_segments()
        return active_segments() + (visible or [])

    topo = build_world(seed=seed)
    dests = sorted(topo.ases)[:32]
    serial = BGPRouting(topo)
    serial.precompute(dests, workers=1)

    def identical(other: BGPRouting) -> bool:
        return all(
            serial.routes_to(d).kind.tobytes()
            == other.routes_to(d).kind.tobytes()
            and serial.routes_to(d).next_hop.tobytes()
            == other.routes_to(d).next_hop.tobytes()
            for d in dests)

    for label, spec in (("worker crash", "seed=7,exec.worker_crash=1x1"),
                        ("hung worker",
                         "seed=7,hang=2,exec.worker_hang=1x1")):
        faults.configure(spec)
        try:
            survivor = BGPRouting(topo)
            survivor.precompute(dests, workers=3)
        finally:
            faults.configure(None)
        if not identical(survivor):
            return _fail(f"shm precompute under {label} differs from "
                         f"fault-free serial tables")
        remnants = leaked()
        if remnants:
            return _fail(f"leaked shared-memory segments after {label} "
                         f"recovery: {remnants}")
    print("stage 2: shm precompute byte-identical under crash and "
          "hang, zero leaked segments")
    return 0


def stage_service(seed: int, async_server: bool = False) -> int:
    """Serve under chaos; every invariant checked over real HTTP."""
    store_dir = tempfile.mkdtemp(prefix="repro-chaos-store-")
    cmd = [sys.executable, "-m", "repro", "serve", "--port", "0",
           "--store-dir", store_dir, "--job-workers", "2",
           "--job-deadline", "1.0", "--job-retries", "1",
           "--drain-timeout", "6"]
    if async_server:
        cmd.append("--async")
    server = subprocess.Popen(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=_env())
    rc = 1
    try:
        banner = server.stdout.readline()
        match = re.search(r"http://([\d.]+):(\d+)", banner)
        if not match:
            return _fail(f"could not parse server banner: {banner!r}")
        base = f"http://{match.group(1)}:{match.group(2)}"
        print(f"stage 3: server up at {base} "
              f"(faults: {SERVE_FAULTS})")

        deadline = time.time() + 30
        while True:
            try:
                status, _, _ = _get(base + "/healthz")
                if status == 200:
                    break
            except (urllib.error.URLError, ConnectionError, OSError):
                pass
            if time.time() > deadline:
                return _fail("server never became healthy")
            time.sleep(0.2)

        bad: list[str] = []
        eventual: dict[str, int] = {}
        targets = [f"/v1/summary?seed={seed}",
                   f"/v1/placement?seed={seed}&budget=3",
                   f"/v1/outages?seed={seed}&years=0.25&wait=1"]
        hammer_deadline = time.time() + 240
        for path in targets:
            status = -1
            while time.time() < hammer_deadline:
                status, headers, _ = _get(base + path)
                if status >= 500 and "X-Repro-Degraded" not in headers:
                    bad.append(f"{path} -> {status} without "
                               f"X-Repro-Degraded")
                    break
                if status == 200:
                    break
                time.sleep(0.3)
            eventual[path] = status
            degraded = headers.get("X-Repro-Degraded", "-")
            print(f"  {path} -> {status} "
                  f"(cache={headers.get('X-Repro-Cache', '-')}, "
                  f"degraded={degraded})")
        if bad:
            return _fail("; ".join(bad))
        not_ok = [p for p, s in eventual.items() if s != 200]
        if not_ok:
            return _fail(f"endpoints never reached 200: {not_ok}")

        # Warm pass: byte-stability survived the chaos.
        cold = {p: _get(base + p)[2] for p in targets}
        warm = {p: _get(base + p)[2] for p in targets}
        if cold != warm:
            return _fail("stored payloads are not byte-stable")
        print("  all endpoints 200 with byte-stable payloads")

        _, _, metrics = _get(base + "/metrics")
        text = metrics.decode()
        injected = [l for l in text.splitlines()
                    if l.startswith("repro_faults_injected_total{")]
        if not any(float(l.rsplit(" ", 1)[1]) >= 1 for l in injected):
            return _fail("metrics do not record any injected fault")
        print("  metrics record injected faults: "
              + "; ".join(l for l in injected))

        # Graceful drain: SIGTERM must exit 0 within 10 s.
        started = time.time()
        server.send_signal(signal.SIGTERM)
        try:
            out, _ = server.communicate(timeout=10)
        except subprocess.TimeoutExpired:
            server.kill()
            return _fail("server did not drain within 10s of SIGTERM")
        elapsed = time.time() - started
        if server.returncode != 0:
            return _fail(f"server exited {server.returncode} "
                         f"after SIGTERM; tail: {out[-400:]!r}")
        if "drained" not in out:
            return _fail(f"no drain confirmation in output: "
                         f"{out[-400:]!r}")
        print(f"  SIGTERM drain clean in {elapsed:.2f}s (exit 0)")
        rc = 0
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=10)

    verify = subprocess.run(
        [sys.executable, "-m", "repro", "store", "verify",
         "--store-dir", store_dir],
        capture_output=True, text=True, env=_env())
    print(verify.stdout.rstrip())
    if verify.returncode != 0:
        # A corrupt-on-write artifact that was never re-read may
        # legitimately still sit on disk; what must never happen is a
        # corrupt artifact being *served*.  Drop it and re-verify.
        print("  (corrupt entries present, as injected; store reads "
              "never served them)")
    return rc


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument("--async", dest="async_server",
                        action="store_true",
                        help="boot stage 3 on the asyncio transport")
    args = parser.parse_args(argv)
    rc = stage_determinism()
    if rc != 0:
        return rc
    rc = stage_shared_memory(args.seed)
    if rc != 0:
        return rc
    rc = stage_service(args.seed, async_server=args.async_server)
    if rc == 0:
        print("CHAOS OK")
    return rc


if __name__ == "__main__":
    sys.exit(main())
