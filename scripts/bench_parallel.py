#!/usr/bin/env python
"""Serial-vs-parallel benchmark for the repro.exec fan-out layer.

Runs a representative workload — the Atlas mesh snapshot, a monitoring
window, and a what-if cable-cut sweep — once with ``--workers 1`` and
once with N workers, fingerprints every output, and writes
``benchmarks/BENCH_parallel.json``::

    {
      "cores": 4, "workers": 4,
      "serial_s": 41.2, "parallel_s": 13.8, "speedup": 2.99,
      "identical": true, ...
    }

Exit status is non-zero if the serial and parallel outputs differ in
any byte (the determinism contract of docs/performance.md), or — with
``--require-speedup X`` on a multi-core machine — if the measured
speedup falls below X.

Usage::

    python scripts/bench_parallel.py                # workers = cores
    python scripts/bench_parallel.py --workers 2 --require-speedup 1.5
"""

from __future__ import annotations

import argparse
import hashlib
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro import build_world  # noqa: E402
from repro.datasets import collect_snapshot  # noqa: E402
from repro.exec import suggested_workers  # noqa: E402
from repro.measurement import (  # noqa: E402
    MeasurementEngine,
    build_atlas_platform,
    build_observatory_platform,
)
from repro.observatory import (  # noqa: E402
    MonitoringRunner,
    PlacementObjective,
    WhatIfCutCables,
    place_probes,
)
from repro.outages import OutageSimulator, march_2024_scenario  # noqa: E402
from repro.routing import BGPRouting, PhysicalNetwork  # noqa: E402

OUT_PATH = pathlib.Path(__file__).resolve().parents[1] / \
    "benchmarks" / "BENCH_parallel.json"
SEED = 2025
MESH_PAIRS = 2000
MONITOR_DAYS = 540


def _sha(chunks) -> str:
    h = hashlib.sha256()
    for chunk in chunks:
        h.update(repr(chunk).encode())
    return h.hexdigest()


def run_workload(workers: int) -> tuple[dict[str, str], float]:
    """One full workload at a worker count; returns fingerprints + secs.

    The world, routing tables, and caches are rebuilt from scratch for
    every call so neither mode benefits from the other's warm state.
    """
    topo = build_world(seed=SEED)
    routing = BGPRouting(topo)
    phys = PhysicalNetwork(topo)
    engine = MeasurementEngine(topo, routing, phys)
    start = time.perf_counter()

    snapshot = collect_snapshot(topo, engine, build_atlas_platform(topo),
                                max_pairs=MESH_PAIRS, workers=workers)

    platform = build_observatory_platform(
        topo, place_probes(topo, PlacementObjective.COUNTRY_COVERAGE))
    simulation = OutageSimulator(topo, phys).simulate(years=1.5)
    report = MonitoringRunner(topo, phys, platform).run(
        simulation, MONITOR_DAYS, workers=workers)

    west, _ = march_2024_scenario(topo)
    severities = WhatIfCutCables(topo).country_severities(
        west, workers=workers)

    elapsed = time.perf_counter() - start
    fingerprints = {
        "snapshot": _sha(snapshot.traceroutes),
        "monitoring": _sha(
            report.health + report.anomalies
            + [sorted(report.truth), sorted(report.detected_truth),
               sorted(report.radar_truth)]),
        "whatif": _sha(sorted(severities.items())),
    }
    return fingerprints, elapsed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=0,
                        help="parallel worker count (default: one per "
                             "core)")
    parser.add_argument("--require-speedup", type=float, default=None,
                        metavar="X",
                        help="fail unless speedup >= X (only enforced "
                             "when the machine has >= 2 cores)")
    args = parser.parse_args(argv)
    cores = suggested_workers()
    workers = args.workers if args.workers > 0 else cores

    print(f"cores={cores} workers={workers} seed={SEED}")
    print(f"serial run   (mesh={MESH_PAIRS} pairs, "
          f"monitor={MONITOR_DAYS} days) ...", flush=True)
    serial_fp, serial_s = run_workload(workers=1)
    print(f"  {serial_s:.2f}s")
    print(f"parallel run (workers={workers}) ...", flush=True)
    parallel_fp, parallel_s = run_workload(workers=workers)
    print(f"  {parallel_s:.2f}s")

    identical = serial_fp == parallel_fp
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    doc = {
        "format": "repro-bench-parallel/1",
        "seed": SEED,
        "cores": cores,
        "workers": workers,
        "mesh_pairs": MESH_PAIRS,
        "monitor_days": MONITOR_DAYS,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(speedup, 3),
        "identical": identical,
        "fingerprints": serial_fp,
    }
    OUT_PATH.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"speedup {speedup:.2f}x, outputs identical: {identical}")
    print(f"wrote {OUT_PATH}")

    if not identical:
        for key in serial_fp:
            if serial_fp[key] != parallel_fp[key]:
                print(f"MISMATCH in {key}: {serial_fp[key][:16]} != "
                      f"{parallel_fp[key][:16]}", file=sys.stderr)
        return 1
    if args.require_speedup is not None and cores >= 2 \
            and speedup < args.require_speedup:
        print(f"speedup {speedup:.2f}x below required "
              f"{args.require_speedup}x on {cores} cores",
              file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
