#!/usr/bin/env python
"""Serial-vs-parallel benchmark for the repro.exec fan-out layer.

Two phases, both byte-identity-checked against the serial run:

* **identity** — the representative workload (Atlas mesh snapshot, a
  monitoring window, a what-if cable-cut sweep) at the default world
  scale, fingerprinting every output.
* **routing** — the compiled routing core at continental scale
  (:data:`repro.topology.CONTINENTAL_SCALE`, ~2000 African ASes):
  every destination's table precomputed serially and then through the
  shared-memory fan-out, timed, fingerprinted, and reported as
  ``tables_per_sec``.

Writes ``benchmarks/BENCH_parallel.json``.  Exit status is non-zero if
serial and parallel outputs differ in any byte (the determinism
contract of docs/performance.md), or — with ``--require-speedup X`` —
if the routing-core speedup falls below X.

A speedup gate *cannot be validated on a single core*: with one core
the parallel run measures pure dispatch overhead, not parallelism.
Asking for ``--require-speedup`` on a 1-core machine is therefore an
error (exit 3, no results file) rather than a silently-passing run.
Without the flag, a 1-core run still executes both phases and records
``"gate_skipped": true`` so downstream tooling knows no speedup claim
was made.

Usage::

    python scripts/bench_parallel.py                # workers = cores
    python scripts/bench_parallel.py --workers 2 --require-speedup 1.3
"""

from __future__ import annotations

import argparse
import hashlib
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro import build_world  # noqa: E402
from repro.datasets import collect_snapshot  # noqa: E402
from repro.exec import suggested_workers  # noqa: E402
from repro.measurement import (  # noqa: E402
    MeasurementEngine,
    build_atlas_platform,
    build_observatory_platform,
)
from repro.observatory import (  # noqa: E402
    MonitoringRunner,
    PlacementObjective,
    WhatIfCutCables,
    place_probes,
)
from repro.outages import OutageSimulator, march_2024_scenario  # noqa: E402
from repro.routing import BGPRouting, PhysicalNetwork  # noqa: E402
from repro.topology import WorldParams, continental_params  # noqa: E402
from repro.topology.generator import TopologyGenerator  # noqa: E402

OUT_PATH = pathlib.Path(__file__).resolve().parents[1] / \
    "benchmarks" / "BENCH_parallel.json"
SEED = 2025
MESH_PAIRS = 2000
MONITOR_DAYS = 540


def _sha(chunks) -> str:
    h = hashlib.sha256()
    for chunk in chunks:
        h.update(repr(chunk).encode())
    return h.hexdigest()


def run_workload(workers: int) -> tuple[dict[str, str], float]:
    """One full workload at a worker count; returns fingerprints + secs.

    The world, routing tables, and caches are rebuilt from scratch for
    every call so neither mode benefits from the other's warm state.
    """
    topo = build_world(seed=SEED)
    routing = BGPRouting(topo)
    phys = PhysicalNetwork(topo)
    engine = MeasurementEngine(topo, routing, phys)
    start = time.perf_counter()

    snapshot = collect_snapshot(topo, engine, build_atlas_platform(topo),
                                max_pairs=MESH_PAIRS, workers=workers)

    platform = build_observatory_platform(
        topo, place_probes(topo, PlacementObjective.COUNTRY_COVERAGE))
    simulation = OutageSimulator(topo, phys).simulate(years=1.5)
    report = MonitoringRunner(topo, phys, platform).run(
        simulation, MONITOR_DAYS, workers=workers)

    west, _ = march_2024_scenario(topo)
    severities = WhatIfCutCables(topo).country_severities(
        west, workers=workers)

    elapsed = time.perf_counter() - start
    fingerprints = {
        "snapshot": _sha(snapshot.traceroutes),
        "monitoring": _sha(
            report.health + report.anomalies
            + [sorted(report.truth), sorted(report.detected_truth),
               sorted(report.radar_truth)]),
        "whatif": _sha(sorted(severities.items())),
    }
    return fingerprints, elapsed


def _table_fingerprint(routing: BGPRouting, dests: list[int]) -> str:
    """SHA over the raw bytes of every destination's four columns."""
    h = hashlib.sha256()
    for dst in dests:
        table = routing.routes_to(dst)
        for column in (table.kind, table.length,
                       table.next_hop, table.via_ixp):
            h.update(column.tobytes())
    return h.hexdigest()


def run_routing_core(workers: int, params=None) -> dict:
    """Table precompute at ``params`` scale, serial then parallel.

    Returns the routing phase document: sizes, timings, the parallel
    throughput in ``tables_per_sec``, and whether every table came out
    byte-identical to the serial run's.  Defaults to continental scale;
    the default-scale phase passes ``WorldParams(seed=SEED)``.
    """
    if params is None:
        params = continental_params(seed=SEED)
    topo = TopologyGenerator(params).build()
    dests = sorted(topo.ases)

    serial = BGPRouting(topo)
    start = time.perf_counter()
    serial.precompute(dests, workers=1)
    serial_s = time.perf_counter() - start

    parallel = BGPRouting(topo)
    start = time.perf_counter()
    parallel.precompute(dests, workers=workers)
    parallel_s = time.perf_counter() - start

    return {
        "scale": params.scale,
        "ases": len(topo.ases),
        "links": len(topo.links),
        "tables": len(dests),
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
        "tables_per_sec": round(len(dests) / parallel_s, 1)
        if parallel_s else None,
        "identical": _table_fingerprint(serial, dests)
        == _table_fingerprint(parallel, dests),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=0,
                        help="parallel worker count (default: one per "
                             "core)")
    parser.add_argument("--require-speedup", type=float, default=None,
                        metavar="X",
                        help="fail unless the routing-core speedup is "
                             ">= X (requires a machine with >= 2 cores)")
    args = parser.parse_args(argv)
    cores = suggested_workers()
    workers = args.workers if args.workers > 0 else cores

    if args.require_speedup is not None and cores < 2:
        print("cannot validate parallelism on 1 core: --require-speedup "
              "needs >= 2 cores (parallel timing on one core measures "
              "dispatch overhead, not speedup)", file=sys.stderr)
        return 3
    gate_skipped = cores < 2

    print(f"cores={cores} workers={workers} seed={SEED}")
    print(f"identity: serial run (mesh={MESH_PAIRS} pairs, "
          f"monitor={MONITOR_DAYS} days) ...", flush=True)
    serial_fp, serial_s = run_workload(workers=1)
    print(f"  {serial_s:.2f}s")
    print(f"identity: parallel run (workers={workers}) ...", flush=True)
    parallel_fp, parallel_s = run_workload(workers=workers)
    print(f"  {parallel_s:.2f}s")
    identical = serial_fp == parallel_fp

    print("routing core: default-scale precompute ...", flush=True)
    routing_default = run_routing_core(workers,
                                       params=WorldParams(seed=SEED))
    print(f"  {routing_default['tables']} tables over "
          f"{routing_default['ases']} ASes: serial "
          f"{routing_default['serial_s']}s, parallel "
          f"{routing_default['parallel_s']}s "
          f"({routing_default['tables_per_sec']} tables/s), speedup "
          f"{routing_default['speedup']}x", flush=True)

    print("routing core: continental-scale precompute ...", flush=True)
    routing = run_routing_core(workers)
    print(f"  {routing['tables']} tables over {routing['ases']} ASes: "
          f"serial {routing['serial_s']}s, parallel "
          f"{routing['parallel_s']}s ({routing['tables_per_sec']} "
          f"tables/s), speedup {routing['speedup']}x", flush=True)

    doc = {
        "format": "repro-bench-parallel/3",
        "seed": SEED,
        "cores": cores,
        "workers": workers,
        "mesh_pairs": MESH_PAIRS,
        "monitor_days": MONITOR_DAYS,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
        "identical": identical,
        "fingerprints": serial_fp,
        "routing": routing,
        "routing_default": routing_default,
        "tables_per_sec": routing["tables_per_sec"],
        "tables_per_sec_default": routing_default["tables_per_sec"],
        "gate_skipped": gate_skipped,
        "required_speedup": args.require_speedup,
    }
    OUT_PATH.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"outputs identical: "
          f"{identical and routing['identical'] and routing_default['identical']}")
    print(f"wrote {OUT_PATH}")

    if not identical:
        for key in serial_fp:
            if serial_fp[key] != parallel_fp[key]:
                print(f"MISMATCH in {key}: {serial_fp[key][:16]} != "
                      f"{parallel_fp[key][:16]}", file=sys.stderr)
        return 1
    if not routing["identical"] or not routing_default["identical"]:
        scale = "continental" if not routing["identical"] else "default"
        print(f"MISMATCH in routing tables: parallel precompute differs "
              f"from serial at {scale} scale", file=sys.stderr)
        return 1
    if args.require_speedup is not None \
            and routing["speedup"] < args.require_speedup:
        print(f"routing-core speedup {routing['speedup']}x below "
              f"required {args.require_speedup}x on {cores} cores",
              file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
