#!/usr/bin/env python
"""Load harness for the production serving path, as CI runs it.

Boots ``repro serve`` as a subprocess (asyncio transport by default)
and drives it with hundreds-to-thousands of concurrent *keep-alive*
clients — one asyncio connection per client, sequential requests over
it — across the endpoint classes that dominate observatory traffic:

* ``warm_hot``    — repeated GETs of stored artifacts (bulk snapshot
                    downloads plus small analytics) served by the
                    in-memory hot tier (the production steady state);
* ``warm_disk``   — the identical workload against a server started
                    with ``--hot-cache-bytes 0``, so every warm hit
                    pays the disk store's read+verify path;
* ``revalidate_hot`` / ``revalidate_disk`` — conditional GETs
                    (``If-None-Match``) answered 304 by each server;
* ``cold_miss``   — distinct never-stored keys that compute inline;
* ``job_poll``    — ``/v1/jobs/<id>`` status polls while an expensive
                    job runs.

Each class records throughput (RPS) and p50/p95/p99 latency into
``benchmarks/BENCH_load.json``.  Two CI gates:

* ``--require-hot-speedup X`` — the hot tier's revalidation p50 must
  be ≥ X times better than the disk store's.  Revalidation is the
  clean probe of the serving path itself: both configurations send
  the identical empty 304, so the measured gap is exactly the work
  the hot tier removes (two file reads, an integrity re-hash and an
  ETag hash under the store lock, plus the executor handoff) with no
  dilution from body-transfer costs that are shared by construction.
  The full-body ``warm`` speedup is recorded alongside;
* ``--require-rps X`` — ``warm_hot`` must sustain ≥ X requests/second.
  Like ``bench_parallel.py``, this gate **refuses** to run on a single
  core (exit 3): a 1-core box cannot demonstrate a concurrency floor,
  and a silent pass there would be a lie.

A chaos arm (skippable with ``--skip-chaos``) re-runs a short mixed
load against a server booted under ``REPRO_FAULTS`` and enforces the
robustness invariant end to end: every 5xx observed under load must
carry ``X-Repro-Degraded``.

Usage::

    python scripts/bench_load.py [--clients 400] [--server async]
        [--require-hot-speedup 5] [--require-rps 500] [--skip-chaos]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import pathlib
import re
import signal
import statistics
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

REPO = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

SEED = 2025
OUT_PATH = REPO / "benchmarks" / "BENCH_load.json"

#: Faults for the chaos arm: transient job errors, one stalled job,
#: one corrupt store write — aggressive but budget-bounded, like
#: scripts/chaos_smoke.py stage 3.
CHAOS_FAULTS = ("seed=7,stall=1,jobs.stall=1x1,jobs.error=1x2,"
                "store.corrupt=1x1")

#: Prewarmed URL mix for the warm classes; the expensive artifacts
#: dominate so the disk path pays real read+verify work per hit.
WARM_PATHS = [
    f"/v1/snapshot?seed={SEED}&pairs=2000",
    f"/v1/snapshot?seed={SEED}&pairs=600",
    f"/v1/coverage?seed={SEED}",
    f"/v1/outages?seed={SEED}&years=0.5",
    f"/v1/whatif?seed={SEED}&scenario=east",
    f"/v1/summary?seed={SEED}",
    f"/v1/placement?seed={SEED}&budget=3",
]


# ----------------------------------------------------------------------
# server lifecycle
# ----------------------------------------------------------------------
def _env(faults: str | None = None) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    env.pop("REPRO_FAULTS", None)
    if faults:
        env["REPRO_FAULTS"] = faults
    env["REPRO_TELEMETRY"] = "1"
    return env


class Server:
    """One ``repro serve`` subprocess bound to an ephemeral port."""

    def __init__(self, store_dir: str, transport: str,
                 hot_cache_bytes: int | None = None,
                 faults: str | None = None,
                 job_workers: int = 2) -> None:
        cmd = [sys.executable, "-m", "repro", "serve", "--port", "0",
               "--store-dir", store_dir,
               "--job-workers", str(job_workers),
               "--drain-timeout", "4"]
        if transport == "async":
            cmd.append("--async")
        if hot_cache_bytes is not None:
            cmd += ["--hot-cache-bytes", str(hot_cache_bytes)]
        self.proc = subprocess.Popen(
            cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=_env(faults))
        banner = self.proc.stdout.readline()
        match = re.search(r"http://([\d.]+):(\d+)", banner)
        if not match:
            self.proc.kill()
            raise RuntimeError(f"bad server banner: {banner!r}")
        self.host, self.port = match.group(1), int(match.group(2))
        self.base = f"http://{self.host}:{self.port}"
        deadline = time.time() + 30
        while True:
            try:
                if self.get("/healthz")[0] == 200:
                    break
            except (urllib.error.URLError, ConnectionError, OSError):
                pass
            if time.time() > deadline:
                self.stop()
                raise RuntimeError("server never became healthy")
            time.sleep(0.2)

    def get(self, path: str, headers: dict | None = None
            ) -> tuple[int, dict, bytes]:
        req = urllib.request.Request(self.base + path,
                                     headers=headers or {})
        try:
            with urllib.request.urlopen(req, timeout=300) as resp:
                return resp.status, dict(resp.headers), resp.read()
        except urllib.error.HTTPError as err:
            return err.code, dict(err.headers), err.read()

    def stop(self) -> int:
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
            try:
                self.proc.communicate(timeout=15)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.communicate(timeout=10)
        return self.proc.returncode


# ----------------------------------------------------------------------
# asyncio keep-alive client engine
# ----------------------------------------------------------------------
class _Client:
    """One keep-alive HTTP/1.1 connection issuing sequential GETs."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None

    async def connect(self) -> None:
        self.reader, self.writer = await asyncio.open_connection(
            self.host, self.port)

    async def close(self) -> None:
        if self.writer is not None:
            try:
                self.writer.close()
                await self.writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def request(self, path: str,
                      headers: dict[str, str] | None = None
                      ) -> tuple[int, dict[str, str], int]:
        """``(status, headers, body_bytes_len)`` for one GET."""
        if self.writer is None:
            await self.connect()
        head = [f"GET {path} HTTP/1.1",
                f"Host: {self.host}:{self.port}",
                "Connection: keep-alive"]
        for name, value in (headers or {}).items():
            head.append(f"{name}: {value}")
        try:
            self.writer.write(
                ("\r\n".join(head) + "\r\n\r\n").encode())
            await self.writer.drain()
            return await self._read_response()
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            # Server closed the idle connection: reconnect once.
            await self.close()
            await self.connect()
            self.writer.write(
                ("\r\n".join(head) + "\r\n\r\n").encode())
            await self.writer.drain()
            return await self._read_response()

    async def _read_response(self) -> tuple[int, dict[str, str], int]:
        status_line = await self.reader.readline()
        if not status_line:
            raise ConnectionError("server closed connection")
        status = int(status_line.split(b" ", 2)[1])
        headers: dict[str, str] = {}
        while True:
            line = await self.reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, sep, value = line.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length") or 0)
        body_len = 0
        if length > 0:
            body = await self.reader.readexactly(length)
            body_len = len(body)
        if headers.get("connection", "").lower() == "close":
            await self.close()
            self.reader = self.writer = None
        return status, headers, body_len


async def _run_phase(host: str, port: int, requests: list[tuple],
                     clients: int) -> dict:
    """Round-robin ``requests`` (path, headers) over ``clients``
    concurrent keep-alive connections; returns the phase stats."""
    latencies: list[float] = []
    status_counts: dict[str, int] = {}
    unlabelled_5xx: list[str] = []
    errors = 0
    per_client = [requests[i::clients] for i in range(clients)]
    per_client = [chunk for chunk in per_client if chunk]

    async def worker(chunk: list[tuple]) -> None:
        nonlocal errors
        client = _Client(host, port)
        try:
            await client.connect()
            for path, headers in chunk:
                started = time.perf_counter()
                try:
                    status, resp_headers, _ = await client.request(
                        path, headers)
                except (ConnectionError, OSError,
                        asyncio.IncompleteReadError):
                    errors += 1
                    continue
                latencies.append(time.perf_counter() - started)
                key = str(status)
                status_counts[key] = status_counts.get(key, 0) + 1
                if status >= 500 \
                        and "x-repro-degraded" not in resp_headers:
                    unlabelled_5xx.append(f"{path} -> {status}")
        finally:
            await client.close()

    started = time.perf_counter()
    await asyncio.gather(*(worker(chunk) for chunk in per_client))
    elapsed = time.perf_counter() - started
    done = len(latencies)
    stats = {
        "requests": done,
        "clients": len(per_client),
        "errors": errors,
        "seconds": round(elapsed, 4),
        "rps": round(done / elapsed, 1) if elapsed > 0 else 0.0,
        "status_counts": dict(sorted(status_counts.items())),
        "unlabelled_5xx": unlabelled_5xx,
    }
    if latencies:
        ordered = sorted(latencies)

        def pct(p: float) -> float:
            idx = min(len(ordered) - 1, int(p * len(ordered)))
            return round(ordered[idx] * 1000.0, 3)

        stats.update(p50_ms=pct(0.50), p95_ms=pct(0.95),
                     p99_ms=pct(0.99),
                     mean_ms=round(
                         statistics.fmean(ordered) * 1000.0, 3))
    return stats


def run_phase(server: Server, requests: list[tuple],
              clients: int) -> dict:
    return asyncio.run(_run_phase(server.host, server.port,
                                  requests, clients))


# ----------------------------------------------------------------------
# workload construction
# ----------------------------------------------------------------------
def prewarm(server: Server) -> dict[str, str]:
    """Compute+store every warm artifact; returns path → ETag."""
    etags: dict[str, str] = {}
    for path in WARM_PATHS:
        sep = "&" if "?" in path else "?"
        status, headers, _ = server.get(path + sep + "wait=1")
        if status != 200:
            raise RuntimeError(f"prewarm {path} -> {status}")
        status, headers, _ = server.get(path)  # warm the serving key
        if status != 200 or "ETag" not in headers:
            raise RuntimeError(f"prewarm re-read {path} -> {status}")
        etags[path] = headers["ETag"]
    return etags


def warm_requests(total: int) -> list[tuple]:
    return [(WARM_PATHS[i % len(WARM_PATHS)], None)
            for i in range(total)]


def conditional_requests(etags: dict[str, str],
                         total: int) -> list[tuple]:
    # Revalidation in production is clients polling their bulk
    # downloads with If-None-Match; small analytics payloads are
    # simply refetched.  Drive the class against the snapshot
    # artifacts accordingly.
    paths = [p for p in etags if "/v1/snapshot" in p] or list(etags)
    return [(paths[i % len(paths)],
             {"If-None-Match": etags[paths[i % len(paths)]]})
            for i in range(total)]


def cold_requests(total: int) -> list[tuple]:
    # Distinct cache keys, never prewarmed: budget is part of the
    # artifact identity, so every request computes inline.
    return [(f"/v1/placement?seed={SEED}&budget={100 + i}", None)
            for i in range(total)]


def poll_requests(server: Server, total: int) -> list[tuple]:
    status, _, body = server.get(
        f"/v1/detours?seed={SEED}&pairs=800")
    doc = json.loads(body)
    if status == 202:
        job_path = doc["poll"]
    else:  # already stored from a previous phase: poll a settled job
        job_path = "/v1/jobs"
    return [(job_path, None) for _ in range(total)]


# ----------------------------------------------------------------------
def cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="load-test the Observatory serving path")
    parser.add_argument("--server", choices=("async", "threaded"),
                        default="async",
                        help="transport under test (default async)")
    parser.add_argument("--clients", type=int, default=400,
                        help="concurrent keep-alive connections for "
                             "the warm classes (default 400)")
    parser.add_argument("--warm-requests", type=int, default=4000,
                        help="total requests per warm class")
    parser.add_argument("--cold-requests", type=int, default=24)
    parser.add_argument("--poll-requests", type=int, default=400)
    parser.add_argument("--require-hot-speedup", type=float,
                        default=None, metavar="X",
                        help="fail unless hot-tier revalidation p50 "
                             "is ≥ X times better than disk-warm")
    parser.add_argument("--require-rps", type=float, default=None,
                        metavar="X",
                        help="fail unless warm_hot sustains ≥ X RPS "
                             "(refuses to run on 1 core: exit 3)")
    parser.add_argument("--skip-chaos", action="store_true",
                        help="skip the REPRO_FAULTS chaos arm")
    parser.add_argument("--out", default=str(OUT_PATH))
    args = parser.parse_args(argv)

    ncores = cores()
    if args.require_rps is not None and ncores < 2:
        print(f"REFUSING to enforce --require-rps on {ncores} core(s): "
              f"a single-core run cannot demonstrate a concurrency "
              f"floor.  Re-run on a multi-core machine.",
              file=sys.stderr)
        return 3

    results: dict = {
        "bench": "load",
        "transport": args.server,
        "cores": ncores,
        "python": sys.version.split()[0],
        "clients": args.clients,
        "gate_skipped": ncores < 2,
        "phases": {},
    }

    # -- phase 1: hot tier enabled (the production configuration) -----
    print(f"[1/4] booting {args.server} server (hot tier on) ...")
    with tempfile.TemporaryDirectory(prefix="repro-load-") as store_dir:
        server = Server(store_dir, args.server)
        try:
            etags = prewarm(server)
            print(f"      prewarmed {len(etags)} artifacts; "
                  f"driving {args.clients} keep-alive clients")
            results["phases"]["warm_hot"] = run_phase(
                server, warm_requests(args.warm_requests),
                args.clients)
            results["phases"]["revalidate_hot"] = run_phase(
                server, conditional_requests(etags,
                                             args.warm_requests),
                args.clients)
            results["phases"]["cold_miss"] = run_phase(
                server, cold_requests(args.cold_requests),
                min(args.clients, args.cold_requests))
            results["phases"]["job_poll"] = run_phase(
                server, poll_requests(server, args.poll_requests),
                min(args.clients, 64))
            _, _, stats_body = server.get("/v1/store/stats")
            results["hot_stats"] = json.loads(stats_body)["hot"]
        finally:
            rc = server.stop()
        if rc != 0:
            print(f"FAIL: server exited {rc} after SIGTERM",
                  file=sys.stderr)
            return 1

    # -- phase 2: identical warm workload, hot tier disabled ----------
    print("[2/4] booting server with --hot-cache-bytes 0 "
          "(disk-warm baseline) ...")
    with tempfile.TemporaryDirectory(prefix="repro-load-") as store_dir:
        server = Server(store_dir, args.server, hot_cache_bytes=0)
        try:
            etags = prewarm(server)
            results["phases"]["warm_disk"] = run_phase(
                server, warm_requests(args.warm_requests),
                args.clients)
            results["phases"]["revalidate_disk"] = run_phase(
                server, conditional_requests(etags,
                                             args.warm_requests),
                args.clients)
        finally:
            rc = server.stop()
        if rc != 0:
            print(f"FAIL: disk-baseline server exited {rc}",
                  file=sys.stderr)
            return 1

    def _ratio(slow: dict, fast: dict) -> float | None:
        if fast.get("p50_ms") and slow.get("p50_ms"):
            return round(slow["p50_ms"] / fast["p50_ms"], 2)
        return None

    hot = results["phases"]["warm_hot"]
    disk = results["phases"]["warm_disk"]
    warm_speedup = _ratio(disk, hot)
    speedup = _ratio(results["phases"]["revalidate_disk"],
                     results["phases"]["revalidate_hot"])
    results["hot_speedup_p50"] = speedup
    results["warm_speedup_p50"] = warm_speedup
    results["rps_warm_hot"] = hot["rps"]
    print(f"[3/4] warm p50 {disk.get('p50_ms')}ms -> "
          f"{hot.get('p50_ms')}ms ({warm_speedup}x), rps {disk['rps']}"
          f" -> {hot['rps']} | revalidate p50 "
          f"{results['phases']['revalidate_disk'].get('p50_ms')}ms -> "
          f"{results['phases']['revalidate_hot'].get('p50_ms')}ms "
          f"(hot speedup = {speedup}x)")

    # -- phase 3: chaos arm -------------------------------------------
    if args.skip_chaos:
        print("[4/4] chaos arm skipped (--skip-chaos)")
        results["chaos"] = {"skipped": True}
    else:
        print(f"[4/4] chaos arm under REPRO_FAULTS={CHAOS_FAULTS}")
        with tempfile.TemporaryDirectory(
                prefix="repro-load-chaos-") as store_dir:
            server = Server(store_dir, args.server,
                            faults=CHAOS_FAULTS, job_workers=2)
            try:
                mixed = []
                for i in range(256):
                    mixed.append(
                        (f"/v1/summary?seed={SEED}", None)
                        if i % 3 else
                        (f"/v1/placement?seed={SEED}&budget="
                         f"{2 + i % 5}", None))
                mixed += [(f"/v1/outages?seed={SEED}&years=0.25",
                           None)] * 16
                chaos = run_phase(server, mixed, clients=32)
                results["chaos"] = chaos
            finally:
                rc = server.stop()
        if chaos["unlabelled_5xx"]:
            print("FAIL: 5xx without X-Repro-Degraded under chaos "
                  "load: " + "; ".join(chaos["unlabelled_5xx"][:5]),
                  file=sys.stderr)
            _write(args.out, results)
            return 1
        if rc != 0:
            print(f"FAIL: chaos server exited {rc} after SIGTERM",
                  file=sys.stderr)
            return 1
        print(f"      {chaos['requests']} requests, statuses "
              f"{chaos['status_counts']}, 0 unlabelled 5xx")

    _write(args.out, results)

    # -- gates ---------------------------------------------------------
    failures = []
    if args.require_hot_speedup is not None:
        if speedup is None or speedup < args.require_hot_speedup:
            failures.append(
                f"hot-tier revalidation p50 speedup {speedup}x < "
                f"required {args.require_hot_speedup}x")
    if args.require_rps is not None \
            and hot["rps"] < args.require_rps:
        failures.append(f"warm_hot {hot['rps']} RPS < required "
                        f"{args.require_rps}")
    for phase_name, phase in results["phases"].items():
        if phase["unlabelled_5xx"]:
            failures.append(f"{phase_name}: 5xx without "
                            f"X-Repro-Degraded")
    if failures:
        for failure in failures:
            print(f"GATE FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"LOAD OK (results: {args.out})")
    return 0


def _write(out: str, results: dict) -> None:
    path = pathlib.Path(out)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(results, indent=2, sort_keys=True)
                    + "\n")
    print(f"wrote {path}")


if __name__ == "__main__":
    sys.exit(main())
