#!/usr/bin/env python
"""Cold-vs-warm benchmark for the Observatory service layer.

Boots the HTTP service in-process on an ephemeral port with a fresh
(empty) artifact store, then measures the same request twice:

* **cold** — the store misses, the analysis pipeline runs (world
  build, routing state, scans), the canonical payload is written to
  the store and served;
* **warm** — the store hits and the stored bytes are served directly.

Asserts the two payloads are byte-identical (the serving contract)
and, with ``--require-speedup X``, that warm is at least X× faster
than cold.  Results land in ``benchmarks/BENCH_service.json``::

    {
      "endpoint": "coverage", "cold_s": 0.81, "warm_s": 0.002,
      "speedup": 395.2, "identical": true, ...
    }

Usage::

    python scripts/bench_service.py                     # default: coverage
    python scripts/bench_service.py --endpoint detours --require-speedup 10
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile
import threading
import time
import urllib.request

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.service import create_server  # noqa: E402
from repro.store import ArtifactStore  # noqa: E402

OUT_PATH = pathlib.Path(__file__).resolve().parents[1] / \
    "benchmarks" / "BENCH_service.json"
SEED = 2025
WARM_REPS = 5

#: Request per benchmarkable endpoint (always with wait=1 so cold
#: expensive queries block until their job lands in the store).
REQUESTS = {
    "coverage": "/v1/coverage?seed={seed}&wait=1",
    "detours": "/v1/detours?seed={seed}&pairs=600&wait=1",
    "outages": "/v1/outages?seed={seed}&years=2.0&wait=1",
    "whatif": "/v1/whatif?seed={seed}&scenario=west&wait=1",
    "summary": "/v1/summary?seed={seed}",
}


def _get(base: str, path: str) -> tuple[dict, bytes, float]:
    start = time.perf_counter()
    with urllib.request.urlopen(base + path, timeout=600) as resp:
        body = resp.read()
        headers = dict(resp.headers)
    return headers, body, time.perf_counter() - start


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--endpoint", choices=sorted(REQUESTS),
                        default="coverage")
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument("--require-speedup", type=float, default=10.0,
                        metavar="X",
                        help="fail unless warm is >= X times faster "
                             "than cold (default 10)")
    args = parser.parse_args(argv)

    path = REQUESTS[args.endpoint].format(seed=args.seed)
    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as tmp:
        store = ArtifactStore(root=tmp)
        httpd, service = create_server(port=0, store=store,
                                       job_workers=2,
                                       default_seed=args.seed)
        thread = threading.Thread(target=httpd.serve_forever,
                                  daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{httpd.server_address[1]}"
        try:
            print(f"endpoint={args.endpoint} seed={args.seed} "
                  f"({base}{path})")
            cold_headers, cold_body, cold_s = _get(base, path)
            print(f"cold: {cold_s:.3f}s "
                  f"(cache={cold_headers.get('X-Repro-Cache')})")
            warm_times = []
            warm_body = b""
            warm_headers: dict = {}
            for _ in range(WARM_REPS):
                warm_headers, warm_body, elapsed = _get(base, path)
                warm_times.append(elapsed)
            warm_s = min(warm_times)
            print(f"warm: {warm_s:.4f}s over {WARM_REPS} reps "
                  f"(cache={warm_headers.get('X-Repro-Cache')})")
        finally:
            httpd.shutdown()
            httpd.server_close()
            service.queue.shutdown()

    identical = cold_body == warm_body
    cache_states_ok = cold_headers.get("X-Repro-Cache") == "miss" \
        and warm_headers.get("X-Repro-Cache") == "hit"
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    doc = {
        "format": "repro-bench-service/1",
        "endpoint": args.endpoint,
        "request": path,
        "seed": args.seed,
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 5),
        "warm_reps": WARM_REPS,
        "speedup": round(speedup, 2),
        "identical": identical,
        "cache_states_ok": cache_states_ok,
        "payload_bytes": len(cold_body),
        "store": {"hits": store.hits, "misses": store.misses},
    }
    OUT_PATH.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"speedup {speedup:.1f}x, payloads identical: {identical}")
    print(f"wrote {OUT_PATH}")

    if not identical:
        print("FAIL: cold and warm payloads differ", file=sys.stderr)
        return 1
    if not cache_states_ok:
        print("FAIL: expected cold=miss then warm=hit cache headers",
              file=sys.stderr)
        return 1
    if speedup < args.require_speedup:
        print(f"FAIL: warm speedup {speedup:.1f}x below required "
              f"{args.require_speedup}x", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
