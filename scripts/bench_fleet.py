#!/usr/bin/env python
"""Fleet throughput benchmark: 4 agents vs 1 on a continental campaign.

Three phases, all digest-checked against a single-process oracle:

* **oracle** — the campaign run serially in this process; its merged
  digest is the reference every fleet run must reproduce.
* **throughput** — the same campaign dispatched to 1 and then
  ``--agents`` subprocess agents over the TCP protocol.  Each phase
  spawns fresh agents, so both pay identical process-startup and
  world-build costs; the speedup is campaign wall-clock t1/tN.
* **chaos** — the campaign again across ``--chaos-agents`` agents with
  one crash-injected (``fleet.agent_crash=1x1``): it must still
  complete via lease reassignment with the oracle's exact digest.

Writes ``benchmarks/BENCH_fleet.json``.  Exit non-zero if any digest
differs, if the chaos campaign stalls, or — with ``--require-speedup
X`` — if the multi-agent speedup falls below X.

As with bench_parallel, a speedup gate cannot be validated on a single
core: ``--require-speedup`` on a 1-core machine is an error (exit 3,
no results file); without the flag a 1-core run still executes every
phase and records ``"gate_skipped": true``.

Usage::

    python scripts/bench_fleet.py                    # full run
    python scripts/bench_fleet.py --require-speedup 1.3
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro import faults  # noqa: E402
from repro.exec import suggested_workers  # noqa: E402
from repro.fleet import (  # noqa: E402
    CampaignSpec,
    CoordinatorServer,
    FleetCoordinator,
    merged_digest,
    run_campaign_serial,
)
from repro.topology.calibration import CONTINENTAL_SCALE  # noqa: E402

OUT_PATH = pathlib.Path(__file__).resolve().parents[1] / \
    "benchmarks" / "BENCH_fleet.json"
SEED = 2025
CRASH_SPEC = "fleet.agent_crash=1x1"
CAMPAIGN_TIMEOUT_S = 540.0


def run_fleet(spec: CampaignSpec, agents: int, crash_one: bool = False,
              heartbeat_timeout_s: float = 6.0,
              lease_timeout_s: float = 8.0,
              poll_s: float = 0.05) -> tuple[float, str, list[int]]:
    """One campaign over ``agents`` subprocess agents.

    Returns ``(wall_seconds, merged_digest, agent_exit_codes)``.  The
    clock starts before the agents are spawned, so process startup and
    per-agent world builds are inside the measurement for every phase
    alike.
    """
    coordinator = FleetCoordinator(
        heartbeat_timeout_s=heartbeat_timeout_s,
        lease_timeout_s=lease_timeout_s)
    server = CoordinatorServer(coordinator).start()
    host, port = server.address
    env = dict(os.environ)
    env["PYTHONPATH"] = str(
        pathlib.Path(__file__).resolve().parents[1] / "src")
    env.pop("REPRO_FAULTS", None)
    idle_polls = max(100, int(lease_timeout_s / poll_s) + 20)
    procs: list[subprocess.Popen] = []
    try:
        started = time.perf_counter()
        campaign_id = coordinator.submit_campaign(spec)
        for i in range(agents):
            agent_env = dict(env)
            if crash_one and i == 0:
                agent_env["REPRO_FAULTS"] = CRASH_SPEC
            procs.append(subprocess.Popen(
                [sys.executable, "-m", "repro", "agent",
                 "--connect", f"{host}:{port}",
                 "--agent-id", f"bench-{i}",
                 "--poll", str(poll_s),
                 "--exit-when-idle", str(idle_polls)],
                env=agent_env, stdout=subprocess.DEVNULL))
        merged = coordinator.wait(campaign_id,
                                  timeout=CAMPAIGN_TIMEOUT_S)
        elapsed = time.perf_counter() - started
        if merged is None:
            raise RuntimeError(
                f"campaign with {agents} agent(s) did not finish in "
                f"{CAMPAIGN_TIMEOUT_S:.0f}s")
        coordinator.drain()
        codes = []
        for proc in procs:
            try:
                codes.append(proc.wait(timeout=30))
            except subprocess.TimeoutExpired:
                proc.kill()
                codes.append(proc.wait())
        return elapsed, merged_digest(merged), codes
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        server.stop()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--agents", type=int, default=4,
                        help="fleet size for the throughput phase "
                             "(default 4)")
    parser.add_argument("--chaos-agents", type=int, default=3,
                        help="fleet size for the crash phase "
                             "(default 3)")
    parser.add_argument("--scale", type=float, default=CONTINENTAL_SCALE,
                        help=f"world scale (default continental "
                             f"{CONTINENTAL_SCALE})")
    parser.add_argument("--rounds", type=int, default=2)
    parser.add_argument("--shards", type=int, default=8)
    parser.add_argument("--probes-per-shard", type=int, default=6)
    parser.add_argument("--targets-per-probe", type=int, default=48)
    parser.add_argument("--require-speedup", type=float, default=None,
                        metavar="X",
                        help="fail unless campaign speedup with "
                             "--agents agents is >= X (needs >= 2 "
                             "cores)")
    args = parser.parse_args(argv)
    cores = suggested_workers()

    if args.require_speedup is not None and cores < 2:
        print("cannot validate parallelism on 1 core: --require-speedup "
              "needs >= 2 cores (N agents on one core time-slice a "
              "single CPU; the measurement would be scheduler noise, "
              "not speedup)", file=sys.stderr)
        return 3
    gate_skipped = cores < 2

    spec = CampaignSpec(seed=SEED, scale=args.scale, rounds=args.rounds,
                        shards=args.shards,
                        probes_per_shard=args.probes_per_shard,
                        targets_per_probe=args.targets_per_probe)
    print(f"cores={cores} spec={spec.to_dict()}")

    print("oracle: single-process campaign ...", flush=True)
    start = time.perf_counter()
    oracle_doc = run_campaign_serial(spec)
    oracle_s = time.perf_counter() - start
    oracle = merged_digest(oracle_doc)
    measurements = oracle_doc["totals"]["measurements"]
    print(f"  {measurements} measurements in {oracle_s:.1f}s, "
          f"digest {oracle[:16]}")

    print("throughput: 1 agent ...", flush=True)
    t1, d1, codes1 = run_fleet(spec, agents=1)
    print(f"  {t1:.1f}s (exits {codes1})")
    print(f"throughput: {args.agents} agents ...", flush=True)
    tn, dn, codesn = run_fleet(spec, agents=args.agents)
    print(f"  {tn:.1f}s (exits {codesn})")
    speedup = t1 / tn if tn else None

    print(f"chaos: {args.chaos_agents} agents, one crash-injected "
          f"({CRASH_SPEC}) ...", flush=True)
    tc, dc, codesc = run_fleet(spec, agents=args.chaos_agents,
                               crash_one=True,
                               heartbeat_timeout_s=3.0,
                               lease_timeout_s=5.0)
    print(f"  {tc:.1f}s (exits {codesc})")

    doc = {
        "format": "repro-bench-fleet/1",
        "seed": SEED,
        "cores": cores,
        "spec": spec.to_dict(),
        "measurements": measurements,
        "oracle_s": round(oracle_s, 3),
        "oracle_digest": oracle,
        "agents": args.agents,
        "t1_s": round(t1, 3),
        "tn_s": round(tn, 3),
        "speedup": round(speedup, 3) if speedup else None,
        "campaigns_per_hour_1": round(3600.0 / t1, 1) if t1 else None,
        "campaigns_per_hour_n": round(3600.0 / tn, 1) if tn else None,
        "identical": oracle == d1 == dn == dc,
        "chaos": {
            "agents": args.chaos_agents,
            "seconds": round(tc, 3),
            "digest_identical": dc == oracle,
            "crash_exit_observed":
                codesc[0] == faults.CRASH_EXIT_CODE if codesc else False,
        },
        "gate_skipped": gate_skipped,
        "required_speedup": args.require_speedup,
    }
    OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"speedup {args.agents} agents vs 1: "
          f"{doc['speedup']}x" + (" (gate skipped: 1 core)"
                                  if gate_skipped else ""))
    print(f"wrote {OUT_PATH}")

    for label, digest in (("1-agent", d1), (f"{args.agents}-agent", dn),
                          ("chaos", dc)):
        if digest != oracle:
            print(f"MISMATCH: {label} digest {digest} != oracle "
                  f"{oracle}", file=sys.stderr)
            return 1
    if codesc and codesc[0] != faults.CRASH_EXIT_CODE:
        print(f"chaos agent exited {codesc[0]}, expected injected "
              f"crash status {faults.CRASH_EXIT_CODE}", file=sys.stderr)
        return 1
    if args.require_speedup is not None \
            and (speedup is None or speedup < args.require_speedup):
        print(f"campaign speedup {doc['speedup']}x below required "
              f"{args.require_speedup}x on {cores} cores",
              file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
