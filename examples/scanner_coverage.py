#!/usr/bin/env python3
"""Why global scanners miss African infrastructure (§6.1, Table 1).

Runs the three scanning strategies against the synthetic world, builds
Table 1, and demonstrates the fix: targeted measurement from inside
IXP-member ASes.

Run:  python examples/scanner_coverage.py
"""

from repro import build_world
from repro.analysis import build_coverage_table
from repro.datasets import build_delegated_file, build_ixp_directory
from repro.measurement import (
    MeasurementEngine,
    build_atlas_platform,
    build_observatory_platform,
    run_ant_hitlist,
    run_caida_prefix_scan,
    run_yarrp_scan,
)
from repro.observatory import IXPDiscoveryCampaign, ixp_cover_hosts
from repro.reporting import ascii_table, pct
from repro.routing import BGPRouting, PhysicalNetwork


def main() -> None:
    topo = build_world(seed=2025)
    routing = BGPRouting(topo)

    scans = [run_ant_hitlist(topo), run_caida_prefix_scan(topo),
             run_yarrp_scan(topo, routing)]
    table = build_coverage_table(topo, build_delegated_file(topo), scans)
    print(ascii_table(
        ["dataset", "entries", "mobile ASN", "non-mobile ASN", "IXP"],
        [[r.dataset, r.entries, pct(r.mobile_coverage),
          pct(r.non_mobile_coverage), pct(r.ixp_coverage)]
         for r in table.rows],
        title="Table 1: coverage of African infrastructure"))
    print("\nIXP LANs are unrouted (RFC 7454), so prefix-guided "
          "scanners cannot see them.")

    # The §6.1 implication, executed: probes inside IXP-member ASes,
    # aimed at IX customers.
    hosts = ixp_cover_hosts(topo).chosen
    fleet = build_observatory_platform(topo, hosts)
    engine = MeasurementEngine(topo, routing, PhysicalNetwork(topo))
    campaign = IXPDiscoveryCampaign(
        topo, engine, build_ixp_directory(topo, complete=True))
    result = campaign.run(fleet.probes[:12], "observatory-subset")
    print(f"\nTargeted campaign from {result.probes_used} "
          f"set-cover-placed probes: {result.detected_count()}/77 "
          f"African IXPs observed "
          f"({result.traceroutes} traceroutes)")


if __name__ == "__main__":
    main()
