#!/usr/bin/env python3
"""The full §4 connectivity report: detours, content, DNS, maturity.

Reproduces the paper's section-4 pipeline end to end and prints the
regional maturity ranking of §4.3 with its component scores.

Run:  python examples/regional_maturity_report.py
"""

from repro import build_world
from repro.analysis import (
    analyze_content_locality,
    analyze_dns_locality,
    analyze_maturity,
    analyze_snapshot,
)
from repro.datasets import (
    build_ixp_directory,
    build_resolver_usage,
    collect_snapshot,
    run_pulse_study,
)
from repro.measurement import (
    GeolocationService,
    MeasurementEngine,
    build_atlas_platform,
)
from repro.reporting import ascii_table, pct
from repro.routing import BGPRouting, PhysicalNetwork


def main() -> None:
    topo = build_world(seed=2025)
    engine = MeasurementEngine(topo, BGPRouting(topo),
                               PhysicalNetwork(topo))
    atlas = build_atlas_platform(topo)

    print("Collecting measurement snapshot...")
    snapshot = collect_snapshot(topo, engine, atlas, max_pairs=1200)
    detours = analyze_snapshot(topo, snapshot, GeolocationService(topo),
                               build_ixp_directory(topo))
    content = analyze_content_locality(run_pulse_study(topo))
    dns = analyze_dns_locality(build_resolver_usage(topo))
    maturity = analyze_maturity(detours, content, dns)

    rows = []
    for row in sorted(maturity.rows, key=lambda r: -r.composite):
        rows.append([row.region.value,
                     pct(row.route_locality),
                     pct(row.content_locality),
                     pct(row.dns_locality),
                     pct(row.ixp_traversal),
                     f"{row.composite:.2f}"])
    print(ascii_table(
        ["region", "route locality", "content locality", "DNS locality",
         "IXP traversal", "maturity"],
        rows,
        title="Regional maturity (§4.3: Southern > Eastern > ... )"))

    ranking = maturity.ranking()
    print(f"\nMost mature region:  {ranking[0].value}")
    print(f"Least mature region: {ranking[-1].value}")
    print("\nPer-region strategy implication (§4.3): localisation "
          "efforts pay most where maturity is lowest; in "
          f"{ranking[0].value} they yield diminishing returns.")


if __name__ == "__main__":
    main()
