#!/usr/bin/env python3
"""Replay the March-2024 cable cuts and test two interventions.

Scenario 1 — the event (§5.1): one corridor incident near Abidjan cuts
WACS, MainOne, SAT-3 and ACE at once.  We measure per-country traffic
loss and DNS breakage.

Scenario 2 — interventions (§5.1/§5.2 implications): a geographically
diverse cable, and legislated DNS localisation for Ghana.

Run:  python examples/cable_cut_whatif.py
"""

from repro import build_world
from repro.observatory import (
    DNSDependencyCampaign,
    WhatIfAddCable,
    WhatIfCutCables,
    WhatIfLocalizeDNS,
)
from repro.outages import march_2024_scenario
from repro.reporting import ascii_table
from repro.routing import PhysicalNetwork


def main() -> None:
    topo = build_world(seed=2025)
    phys = PhysicalNetwork(topo)
    west, east = march_2024_scenario(topo)
    names = {c.cable_id: c.name for c in topo.cables}
    print("March-2024 west-coast event: cutting "
          + ", ".join(names[c] for c in west))

    cut = WhatIfCutCables(topo)
    severities = cut.country_severities(west)
    heavy = sorted(((cc, s) for cc, s in severities.items() if s > 0.2),
                   key=lambda kv: -kv[1])
    print(ascii_table(["country", "international traffic lost"],
                      [[cc, f"{s:.0%}"] for cc, s in heavy],
                      title="Impact (traffic-weighted capacity loss)"))

    dns = DNSDependencyCampaign(topo, phys)
    rows = dns.run(["GH", "CI", "NG", "SN"], west)
    print(ascii_table(
        ["country", "non-local resolvers", "DNS failures (baseline)",
         "DNS failures (during cut)"],
        [[r.iso2, f"{r.nonlocal_share:.0%}",
          f"{r.baseline_failure_rate:.0%}",
          f"{r.cable_cut_failure_rate:.0%}"] for r in rows],
        title="Hidden DNS dependency (§5.2)"))

    # Intervention 1: a diverse South-Atlantic cable for Ghana.
    add = WhatIfAddCable(topo)
    modified = add.apply("Ghana-Brazil-Diverse", ("GH", "BR"),
                         capacity_tbps=80.0)
    outcome = add.cut_severity("GH", west, modified)
    print(f"\nWhat-if diverse cable: Ghana's severity "
          f"{outcome.baseline:.0%} -> {outcome.modified:.0%}")

    # Intervention 2: legislate resolver localisation in Ghana.
    localize = WhatIfLocalizeDNS(topo)
    local_world = localize.apply("GH", localized_share=1.0)
    dns_outcome = localize.outage_resolution_failure(
        "GH", west, local_world, domains=5)
    print(f"What-if DNS localisation: Ghana's outage DNS failure rate "
          f"{dns_outcome.baseline:.0%} -> {dns_outcome.modified:.0%}")


if __name__ == "__main__":
    main()
