#!/usr/bin/env python3
"""Run the Observatory as a continuous outage monitor (§5.2 watchdog +
§7 platform working together).

Simulates half a year of the African Internet — including whatever
cable cuts, shutdowns and grid failures the outage process produces —
while a country-coverage probe fleet measures health four times a day.
Prints the anomaly log and the detection comparison against a
traffic-drop monitor.

Run:  python examples/outage_monitoring.py
"""

from repro import build_world
from repro.measurement import build_observatory_platform
from repro.observatory import (
    MonitoringRunner,
    PlacementObjective,
    place_probes,
)
from repro.outages import OutageCause, OutageSimulator
from repro.reporting import ascii_table, pct
from repro.routing import PhysicalNetwork


def main() -> None:
    topo = build_world(seed=2025)
    phys = PhysicalNetwork(topo)
    platform = build_observatory_platform(
        topo, place_probes(topo, PlacementObjective.COUNTRY_COVERAGE))
    print(f"Fleet: {len(platform)} probes in "
          f"{len(platform.countries())} countries")

    simulation = OutageSimulator(topo, phys).simulate(years=0.5)
    cable_events = simulation.by_cause(OutageCause.SUBSEA_CABLE_CUT)
    print(f"Simulated timeline: {len(simulation.events)} events "
          f"({len(cable_events)} cable cuts) over 180 days")

    runner = MonitoringRunner(topo, phys, platform)
    report = runner.run(simulation, days=180)

    print(ascii_table(
        ["day", "country", "health", "baseline"],
        [[a.day, a.iso2, pct(a.success_rate), pct(a.baseline)]
         for a in report.anomalies[:15]],
        title="First 15 anomaly alarms"))

    print(f"\nDetection recall (impacts >= 10% severity):")
    print(f"  Observatory active probing : {pct(report.recall())}")
    print(f"  Traffic-drop monitor       : {pct(report.radar_recall())}")
    print(f"  False-alarm country-days   : {report.false_alarm_days()} "
          f"of {len(report.health)}")


if __name__ == "__main__":
    main()
