#!/usr/bin/env python3
"""Quickstart: build the synthetic African Internet and look around.

Builds the default world, runs a traceroute from the paper's Kigali
vantage (AS36924) toward a Ghanaian eyeball, and prints the headline
connectivity facts the paper revolves around.

Run:  python examples/quickstart.py
"""

from repro import build_world
from repro.datasets import build_ixp_directory, collect_snapshot
from repro.measurement import (
    AccessTech,
    GeolocationService,
    MeasurementEngine,
    ProbeKind,
    VantagePoint,
    build_atlas_platform,
)
from repro.analysis import analyze_snapshot
from repro.reporting import ascii_table, pct
from repro.routing import BGPRouting, PhysicalNetwork


def main() -> None:
    print("Building world (seed=2025)...")
    topo = build_world(seed=2025)
    print(ascii_table(["metric", "value"],
                      sorted(topo.summary().items()),
                      title="World summary"))

    routing = BGPRouting(topo)
    phys = PhysicalNetwork(topo)
    engine = MeasurementEngine(topo, routing, phys)

    # A traceroute from Kigali (AS36924, §7.3) to a Ghanaian network.
    probe = VantagePoint(probe_id=1, asn=36924, country_iso2="RW",
                         kind=ProbeKind.RASPBERRY_PI,
                         access=AccessTech.FIXED)
    gh = next(a for a in topo.ases_in_country("GH") if a.kind.is_eyeball)
    trace = engine.traceroute(probe, gh.prefixes[0].network + 20)
    print(f"\nTraceroute AS36924 (Kigali) -> {gh.name}:")
    for hop in trace.hops:
        rtt = f"{hop.rtt_ms:6.1f} ms" if hop.rtt_ms else "      *"
        fabric = "  [IXP fabric]" if hop.is_ixp_fabric else ""
        print(f"  {hop.ttl:2d}  {hop.ip_str():15s} {rtt}  "
              f"AS{hop.asn} ({hop.country_iso2}){fabric}")

    # The paper's headline: how much intra-African traffic detours?
    atlas = build_atlas_platform(topo)
    snapshot = collect_snapshot(topo, engine, atlas, max_pairs=300)
    report = analyze_snapshot(topo, snapshot, GeolocationService(topo),
                              build_ixp_directory(topo))
    print(f"\nIntra-African routes detouring off-continent: "
          f"{pct(report.detour_rate())}")
    print(f"Routes crossing any IXP: {pct(report.ixp_traversal_rate())}")
    print(f"African IXPs in the world: {len(topo.african_ixps())}")


if __name__ == "__main__":
    main()
