#!/usr/bin/env python3
"""Cost-conscious measurement scheduling across African pricing models.

Defines a realistic monthly campaign (IXP traceroutes, resolver checks,
cellular page loads), prices it per market, and schedules it across an
Observatory fleet under different budgets — including the full
experiment-vetting lifecycle of §7.1's "trusted cohort".

Run:  python examples/budget_scheduling.py
"""

from repro import build_world
from repro.measurement import AccessTech
from repro.observatory import (
    Experiment,
    MeasurementTask,
    ObservatoryPlatform,
    PlacementObjective,
    plan_for,
    schedule_cost_aware,
    schedule_round_robin,
    wire_bytes,
)
from repro.reporting import ascii_table


def campaign_tasks() -> list[MeasurementTask]:
    tasks = []
    for i in range(30):
        tasks.append(MeasurementTask(
            f"ixp-trace-{i}", "traceroute", f"ixp-member-{i % 8}",
            app_bytes=150_000, runs_per_month=30, utility=2.0))
    for i in range(15):
        tasks.append(MeasurementTask(
            f"dns-probe-{i}", "dns", f"resolver-{i % 5}",
            app_bytes=20_000, runs_per_month=120, utility=1.5))
    for i in range(8):
        tasks.append(MeasurementTask(
            f"mobile-pageload-{i}", "pageload", f"top-site-{i}",
            app_bytes=2_500_000, runs_per_month=10, utility=3.0,
            requires_access=AccessTech.CELLULAR))
    return tasks


def main() -> None:
    topo = build_world(seed=2025)

    # How the same gigabyte is billed across markets (§7.1).
    rows = []
    for iso2 in ("DE", "ZA", "KE", "NG", "GH", "CD"):
        plan = plan_for(iso2)
        rows.append([iso2, plan.model.value, f"${plan.usd_per_gb:.2f}",
                     f"{plan.bundle_mb} MB"])
    print(ascii_table(["country", "model", "USD/GB", "bundle"],
                      rows, title="Pricing models per market"))
    cellular = wire_bytes(1_000_000, AccessTech.CELLULAR)
    print(f"\n1 MB of application traffic bills as "
          f"{cellular / 1e6:.2f} MB on cellular (low-level accounting)")

    # Full platform lifecycle: vet, approve, schedule.
    platform = ObservatoryPlatform(
        topo, objective=PlacementObjective.COUNTRY_COVERAGE,
        probe_budget=30, monthly_budget_usd=8.0,
        trusted_cohort={"observatory-core"})
    experiment = Experiment("monthly-campaign", "observatory-core",
                            "IXP + DNS + mobile QoE sweep",
                            tasks=campaign_tasks())
    platform.submit(experiment)
    print(f"\nExperiment vetting: {experiment.status.value}")
    schedule = platform.schedule_experiment("monthly-campaign")

    naive = schedule_round_robin(platform.fleet.probes, campaign_tasks(),
                                 8.0)
    print(ascii_table(
        ["scheduler", "tasks placed", "unplaced", "monthly spend",
         "utility", "utility/$"],
        [["cost-aware + reuse", len(schedule.assignments),
          len(schedule.unplaced), f"${schedule.total_cost_usd:.2f}",
          f"{schedule.total_utility:.0f}",
          f"{schedule.utility_per_dollar():.1f}"],
         ["round-robin", len(naive.assignments), len(naive.unplaced),
          f"${naive.total_cost_usd:.2f}", f"{naive.total_utility:.0f}",
          f"{naive.utility_per_dollar():.1f}"]],
        title="Schedule under $8/probe/month"))


if __name__ == "__main__":
    main()
