#!/usr/bin/env python3
"""Generate the quarterly stakeholder report (§7.2).

The artifact the Observatory hands to regulators and town halls: one
readable document produced by the full measurement + analysis pipeline.

Run:  python examples/stakeholder_report.py
"""

from repro import build_world
from repro.observatory import generate_report


def main() -> None:
    topo = build_world(seed=2025)
    print("Running the full analysis pipeline...")
    report = generate_report(topo, max_pairs=600)
    print()
    print(report.text)
    print(f"(machine-readable headline: detour={report.detour_rate:.2f}, "
          f"content locality={report.content_locality:.2f}, "
          f"compliance={report.compliance_rate:.2f})")


if __name__ == "__main__":
    main()
