#!/usr/bin/env python3
"""Purpose-driven probe placement vs volunteer platforms (§7.3).

Runs the footnote-1 greedy set cover (which ASes jointly cover all 77
African IXPs), compares the result against an Atlas-style volunteer
deployment, and replays the Kigali AS36924 experiment.

Run:  python examples/probe_placement.py
"""

from repro import build_world
from repro.datasets import build_ixp_directory
from repro.measurement import MeasurementEngine, build_atlas_platform
from repro.observatory import (
    ObservatoryPlatform,
    PlacementObjective,
    compare_ixp_coverage,
    ixp_cover_hosts,
    kigali_comparison,
)
from repro.reporting import ascii_table
from repro.routing import BGPRouting, PhysicalNetwork


def main() -> None:
    topo = build_world(seed=2025)
    cover = ixp_cover_hosts(topo)
    print(f"Greedy set cover: {len(cover.chosen)} host ASNs cover "
          f"{len(cover.covered)}/77 African IXPs (paper: 34)")
    rows = []
    covered_so_far = 0
    for i, asn in enumerate(cover.chosen[:10]):
        gain = cover.curve[i] - covered_so_far
        covered_so_far = cover.curve[i]
        rows.append([i + 1, f"AS{asn}", topo.as_(asn).name, gain,
                     covered_so_far])
    print(ascii_table(
        ["pick", "ASN", "network", "new IXPs", "total covered"],
        rows, title="First ten picks"))

    atlas = build_atlas_platform(topo)
    comparison = compare_ixp_coverage(topo, atlas)
    print(f"\nAtlas-like volunteers: {comparison.atlas_hosts} host ASes "
          f"reach only {comparison.atlas_covered}/77 IXPs")

    engine = MeasurementEngine(topo, BGPRouting(topo),
                               PhysicalNetwork(topo))
    obs, ref = kigali_comparison(
        topo, engine, build_ixp_directory(topo, complete=True), atlas)
    print(f"Kigali experiment: targeted probe on AS36924 surfaced "
          f"{obs.detected_count()} African IXPs vs "
          f"{ref.detected_count()} for Atlas builtins "
          f"(+{obs.detected_count() - ref.detected_count()}; paper: +14)")

    platform = ObservatoryPlatform(
        topo, objective=PlacementObjective.IXP_COVERAGE)
    print("\nDeployed Observatory fleet:",
          platform.fleet_report())


if __name__ == "__main__":
    main()
